"""Concurrency-contract linter: project-specific AST rules for ``src/``.

PRs 4-5 made the execution stack genuinely multithreaded (the
:class:`~repro.wei.drivers.bridge.CompletionBridge`, wire-protocol reader
threads, device emulators, chaos timers).  Its safety rests on invariants
that previously existed only as docstrings and review folklore.  This module
turns them into machine-checked rules, run as ``python -m repro lint`` and as
the blocking ``analysis`` CI job (see ``docs/concurrency_contract.md`` for
the contract each rule guards):

``RPR001``
    No ``time.sleep`` outside :mod:`repro.sim.clock`.  Engine and driver
    code must pace against a :class:`~repro.sim.clock.WallClock` so tests
    can run with ``sleep=False`` and speedup compression; a stray sleep is
    invisible to both.
``RPR002``
    No blocking call inside a ``with <lock>:`` block: ``time.sleep``,
    thread ``.join()``, ``Queue.get()`` without a timeout, or ``.wait()`` on
    anything *other than the condition variable being held* (waiting on the
    held condition releases it -- that is the one blocking call a critical
    section may make).
``RPR003``
    No bare ``<lock>.acquire()``: acquisition must be a ``with`` block or be
    immediately followed by / enclosed in ``try``/``finally`` that releases
    the same lock, so an exception can never leak a held lock.
``RPR004``
    Every ``threading.Thread(...)`` must pass ``name=`` and ``daemon=``:
    anonymous threads make deadlock reports unreadable, and non-daemon
    threads hang interpreter shutdown when a test fails mid-run.
``RPR005``
    No stdlib ``random`` module use: unseeded ``random.Random()`` and the
    process-global ``random.*`` functions break the determinism contract.
    All randomness must flow from :mod:`repro.utils.rng` (seeded numpy
    generators derived by name).
``RPR006``
    ``CompletionBridge.post`` may be referenced only inside
    ``repro.wei.drivers`` (the transport layer).  This is the static
    approximation of the in-band-delivery ban: only driver-owned threads may
    post completions, and only the registry may hand ``bridge.post`` out.
``RPR007``
    No bare ``start_span(...)`` call outside ``repro.obs``: instrumentation
    opens spans only through ``with tracer.span(...)`` (or a ``try`` whose
    ``finally`` calls ``end_span``), so an exception can never leak an open
    span onto the thread's stack and corrupt every later span's parentage.

Violations can be suppressed through a JSON baseline file
(``--baseline``), matched by rule + file + source-line text so ordinary
line-number drift does not silently resurrect them.  The shipped baseline
(``tools/lint_baseline.json``) is empty by policy: fix violations, do not
bury them.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = [
    "RULES",
    "PLACEHOLDER_JUSTIFICATION",
    "LintViolation",
    "Baseline",
    "lint_file",
    "lint_paths",
    "run_lint",
    "render_text",
    "render_json",
]

#: Rule id -> one-line summary (the CLI prints these under ``lint --rules``).
RULES: Dict[str, str] = {
    "RPR001": "time.sleep outside repro.sim.clock (pace via WallClock instead)",
    "RPR002": "blocking call (sleep/join/queue-get/foreign wait) inside a `with <lock>:` block",
    "RPR003": "bare Lock.acquire() without a context manager or try/finally release",
    "RPR004": "threading.Thread(...) without explicit name= and daemon=",
    "RPR005": "stdlib `random` use (unseeded/global RNG breaks the determinism contract)",
    "RPR006": "CompletionBridge.post referenced outside repro.wei.drivers",
    "RPR007": "bare start_span(...) without a try/finally end_span (use `with tracer.span(...)`)",
}

#: Module path suffixes allowed to call ``time.sleep`` (RPR001): the wall
#: clock is the single place real sleeping is implemented.
SLEEP_WHITELIST = ("repro/sim/clock.py",)

#: Path fragment naming the modules allowed to reference ``bridge.post``
#: (RPR006): the transport layer itself.
POST_WHITELIST = "repro/wei/drivers/"

#: Path fragment naming the modules allowed to call ``start_span`` bare
#: (RPR007): the tracer's own machinery (``Tracer.span`` wraps it there).
SPAN_WHITELIST = "repro/obs/"

#: Receiver names treated as lock-like for RPR002/RPR003.  Matches the
#: terminal attribute/name, e.g. ``self._cond``, ``pipe._lock``, ``mutex``.
_LOCK_NAME = re.compile(r"(^|_)(lock|locks|rlock|cond|condition|mutex|sem|semaphore)$", re.IGNORECASE)

#: Receiver names treated as bridge-like for RPR006.
_BRIDGE_NAME = re.compile(r"(^|_)bridge$", re.IGNORECASE)

#: Justification stamped on every entry by ``lint --write-baseline``.
#: :meth:`Baseline.load` refuses it, so a bootstrapped baseline cannot be
#: merged until each entry is edited to say *why* it is suppressed.
PLACEHOLDER_JUSTIFICATION = "TODO: justify or fix"


@dataclass(frozen=True)
class LintViolation:
    """One rule violation at a specific source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    snippet: str = ""

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable form (the CI report artifact schema)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
        }

    @property
    def fingerprint(self) -> Tuple[str, str, str]:
        """Identity used for baseline matching: line drift must not unsuppress."""
        return (self.rule, self.path, self.snippet.strip())


class Baseline:
    """A set of suppressed violations, loaded from / saved to JSON.

    Every entry carries a ``justification`` string; an entry without one is
    rejected at load time, which is how "keep the baseline justified
    line-by-line" is enforced mechanically rather than by review.
    """

    def __init__(self, entries: Optional[List[Dict[str, str]]] = None) -> None:
        self.entries: List[Dict[str, str]] = list(entries or [])
        self._index: Set[Tuple[str, str, str]] = {
            (e["rule"], e["path"], e.get("snippet", "").strip()) for e in self.entries
        }

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        data = json.loads(Path(path).read_text(encoding="utf-8"))
        entries = data.get("suppressions", [])
        for entry in entries:
            for key in ("rule", "path", "snippet"):
                if key not in entry:
                    raise ValueError(f"baseline entry missing {key!r}: {entry}")
            justification = str(entry.get("justification", "")).strip()
            if not justification:
                raise ValueError(
                    f"baseline entry for {entry['rule']} at {entry['path']} has no "
                    "justification; every suppression must say why"
                )
            if justification == PLACEHOLDER_JUSTIFICATION:
                raise ValueError(
                    f"baseline entry for {entry['rule']} at {entry['path']} still "
                    f"carries the --write-baseline placeholder justification "
                    f"({PLACEHOLDER_JUSTIFICATION!r}); edit it to say why before "
                    "the baseline can be used"
                )
        return cls(entries)

    @classmethod
    def from_violations(cls, violations: Iterable[LintViolation], justification: str) -> "Baseline":
        return cls(
            [
                {
                    "rule": v.rule,
                    "path": v.path,
                    "snippet": v.snippet.strip(),
                    "justification": justification,
                }
                for v in violations
            ]
        )

    def suppresses(self, violation: LintViolation) -> bool:
        return violation.fingerprint in self._index

    def to_json(self) -> str:
        return json.dumps({"version": 1, "suppressions": self.entries}, indent=2, sort_keys=True) + "\n"


# ---------------------------------------------------------------------------
# The AST walker
# ---------------------------------------------------------------------------


def _terminal_name(node: ast.expr) -> str:
    """The last dotted component of a Name/Attribute expression (else '')."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def _dotted_text(node: ast.expr) -> str:
    """Stable text for comparing lock expressions (``self._pipe._cond``)."""
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse failure on exotic nodes
        return ""


def _is_lock_like(node: ast.expr) -> bool:
    return bool(_LOCK_NAME.search(_terminal_name(node)))


@dataclass
class _ImportNames:
    """Which local names alias the ``time``/``random``/``threading`` modules
    and their relevant members, tracked per file."""

    time_modules: Set[str] = field(default_factory=set)
    sleep_funcs: Set[str] = field(default_factory=set)
    random_modules: Set[str] = field(default_factory=set)
    random_funcs: Set[str] = field(default_factory=set)
    threading_modules: Set[str] = field(default_factory=set)
    thread_classes: Set[str] = field(default_factory=set)


class _FileLinter(ast.NodeVisitor):
    """Runs every rule over one parsed module."""

    def __init__(self, path: str, source_lines: Sequence[str], *, posix_path: str) -> None:
        self.path = path
        self.lines = source_lines
        self.posix_path = posix_path
        self.violations: List[LintViolation] = []
        self.names = _ImportNames()
        #: Stack of held lock expressions (text form) from enclosing
        #: ``with`` statements; function boundaries push a sentinel frame.
        self._held_locks: List[str] = []

    # -- helpers --------------------------------------------------------
    def _report(self, rule: str, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 0)
        snippet = self.lines[line - 1].strip() if 0 < line <= len(self.lines) else ""
        self.violations.append(
            LintViolation(
                rule=rule,
                path=self.path,
                line=line,
                col=getattr(node, "col_offset", 0),
                message=message,
                snippet=snippet,
            )
        )

    def _in_sleep_whitelist(self) -> bool:
        return any(self.posix_path.endswith(suffix) for suffix in SLEEP_WHITELIST)

    def _in_post_whitelist(self) -> bool:
        return POST_WHITELIST in self.posix_path

    def _in_span_whitelist(self) -> bool:
        return SPAN_WHITELIST in self.posix_path

    # -- import tracking ------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name
            if alias.name == "time":
                self.names.time_modules.add(local)
            elif alias.name == "random":
                self.names.random_modules.add(local)
            elif alias.name == "threading":
                self.names.threading_modules.add(local)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        for alias in node.names:
            local = alias.asname or alias.name
            if node.module == "time" and alias.name == "sleep":
                self.names.sleep_funcs.add(local)
            elif node.module == "random":
                self.names.random_funcs.add(local)
            elif node.module == "threading" and alias.name == "Thread":
                self.names.thread_classes.add(local)
        self.generic_visit(node)

    # -- scope handling --------------------------------------------------
    def _visit_function(self, node) -> None:
        # A nested def/lambda runs later, on an unknown thread, with no lock
        # necessarily held: its body must not inherit the enclosing
        # with-lock context.
        held, self._held_locks = self._held_locks, []
        try:
            self.generic_visit(node)
        finally:
            self._held_locks = held

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function
    visit_Lambda = _visit_function

    def visit_With(self, node: ast.With) -> None:
        lock_exprs = [
            _dotted_text(item.context_expr)
            for item in node.items
            if _is_lock_like(item.context_expr)
        ]
        self._held_locks.extend(lock_exprs)
        try:
            self.generic_visit(node)
        finally:
            del self._held_locks[len(self._held_locks) - len(lock_exprs) :]

    # -- call-site rules --------------------------------------------------
    def _is_sleep_call(self, node: ast.Call) -> bool:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "sleep":
            if isinstance(func.value, ast.Name) and func.value.id in self.names.time_modules:
                return True
        if isinstance(func, ast.Name) and func.id in self.names.sleep_funcs:
            return True
        return False

    def _check_sleep(self, node: ast.Call) -> None:
        if not self._is_sleep_call(node):
            return
        if not self._in_sleep_whitelist():
            self._report(
                "RPR001",
                node,
                "time.sleep outside repro.sim.clock; pace real time through "
                "WallClock.advance/advance_to so tests can disable sleeping",
            )
        if self._held_locks:
            self._report(
                "RPR002",
                node,
                f"sleep while holding lock {self._held_locks[-1]!r}; release the "
                "lock before pacing",
            )

    def _check_blocking_in_lock(self, node: ast.Call) -> None:
        if not self._held_locks:
            return
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        attr = func.attr
        receiver = _dotted_text(func.value)
        if attr == "join" and not node.args:
            # Zero positional arguments is the Thread/Process.join signature;
            # str.join always takes the iterable positionally.
            self._report(
                "RPR002",
                node,
                f"{receiver}.join() while holding lock {self._held_locks[-1]!r} "
                "can deadlock against the joined thread taking the same lock",
            )
        elif attr == "get" and not node.args:
            kwargs = {kw.arg for kw in node.keywords}
            if "timeout" not in kwargs and "block" not in kwargs:
                self._report(
                    "RPR002",
                    node,
                    f"{receiver}.get() without a timeout while holding lock "
                    f"{self._held_locks[-1]!r} blocks the critical section indefinitely",
                )
        elif attr in ("wait", "wait_for"):
            if receiver not in self._held_locks:
                self._report(
                    "RPR002",
                    node,
                    f"{receiver}.{attr}() while holding {self._held_locks[-1]!r}: "
                    "waiting on anything but the held condition variable keeps "
                    "the lock across the block",
                )

    def _check_thread_ctor(self, node: ast.Call) -> None:
        func = node.func
        is_thread = False
        if isinstance(func, ast.Attribute) and func.attr == "Thread":
            if isinstance(func.value, ast.Name) and func.value.id in self.names.threading_modules:
                is_thread = True
        elif isinstance(func, ast.Name) and func.id in self.names.thread_classes:
            is_thread = True
        if not is_thread:
            return
        kwargs = {kw.arg for kw in node.keywords}
        if None in kwargs:  # a **splat may carry both; statically unknowable
            return
        missing = [k for k in ("name", "daemon") if k not in kwargs]
        if missing:
            self._report(
                "RPR004",
                node,
                "threading.Thread(...) missing explicit "
                + " and ".join(f"{k}=" for k in missing)
                + " (anonymous/non-daemon threads break deadlock reports and shutdown)",
            )

    def _check_random(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            if func.value.id in self.names.random_modules:
                if func.attr == "Random":
                    if not node.args and not node.keywords:
                        self._report(
                            "RPR005",
                            node,
                            "random.Random() without a seed; derive a seeded "
                            "generator from repro.utils.rng instead",
                        )
                else:
                    self._report(
                        "RPR005",
                        node,
                        f"random.{func.attr}() uses the process-global RNG; derive "
                        "a seeded stream from repro.utils.rng instead",
                    )
        elif isinstance(func, ast.Name) and func.id in self.names.random_funcs:
            self._report(
                "RPR005",
                node,
                f"{func.id}() from the stdlib random module uses global/unseeded "
                "state; derive a seeded stream from repro.utils.rng instead",
            )

    def _check_bare_acquire(self, node: ast.Call, ancestors: List[ast.AST]) -> None:
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "acquire"):
            return
        if not _is_lock_like(func.value):
            return
        receiver = _dotted_text(func.value)
        release_text = f"{receiver}.release()"
        # Pattern 1: enclosed in the *body* of a try whose finally releases
        # the same lock.  Only the guarded body earns the exemption: an
        # acquire sitting in the orelse/handlers/finalbody of that try is not
        # covered by the finally's guarantee (in the finalbody the release
        # may already have run), so it falls through to the other patterns.
        for index, ancestor in enumerate(ancestors):
            if not isinstance(ancestor, ast.Try):
                continue
            child = ancestors[index + 1] if index + 1 < len(ancestors) else node
            if not any(child is stmt for stmt in ancestor.body):
                continue
            final_src = "\n".join(_dotted_text(stmt) for stmt in ancestor.finalbody)
            if release_text in final_src:
                return
        # Pattern 2: `lock.acquire()` statement immediately followed by such
        # a try (the canonical acquire-then-try idiom).
        for ancestor in reversed(ancestors):
            body = getattr(ancestor, "body", None)
            if not isinstance(body, list):
                continue
            for block in [body] + [getattr(ancestor, f, []) for f in ("orelse", "finalbody")]:
                for index, stmt in enumerate(block):
                    if isinstance(stmt, ast.Expr) and stmt.value is node:
                        nxt = block[index + 1] if index + 1 < len(block) else None
                        if isinstance(nxt, ast.Try):
                            final_src = "\n".join(_dotted_text(s) for s in nxt.finalbody)
                            if release_text in final_src:
                                return
                        self._report(
                            "RPR003",
                            node,
                            f"bare {receiver}.acquire() without a context manager "
                            "or try/finally release; an exception here leaks the lock",
                        )
                        return
        # Acquire used as an expression (e.g. `if lock.acquire(timeout=...):`)
        # still needs a guaranteed release path; flag it unless a try/finally
        # ancestor released it above.
        self._report(
            "RPR003",
            node,
            f"{receiver}.acquire() result used without a try/finally release; "
            "prefer `with {0}:` or release in a finally".format(receiver),
        )

    def _check_start_span(self, node: ast.Call, ancestors: List[ast.AST]) -> None:
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "start_span"):
            return
        if self._in_span_whitelist():
            return
        # Pattern 1 (mirrors RPR003): the call sits in the *body* of a try
        # whose finally calls end_span -- the span cannot leak.
        for index, ancestor in enumerate(ancestors):
            if not isinstance(ancestor, ast.Try) or not ancestor.finalbody:
                continue
            child = ancestors[index + 1] if index + 1 < len(ancestors) else node
            if not any(child is stmt for stmt in ancestor.body):
                continue
            final_src = "\n".join(_dotted_text(stmt) for stmt in ancestor.finalbody)
            if "end_span" in final_src:
                return
        # Pattern 2: `span = tracer.start_span(...)` immediately followed by
        # such a try (the open-then-guard idiom).
        for ancestor in reversed(ancestors):
            body = getattr(ancestor, "body", None)
            if not isinstance(body, list):
                continue
            for block in [body] + [getattr(ancestor, f, []) for f in ("orelse", "finalbody")]:
                for index, stmt in enumerate(block):
                    if isinstance(stmt, (ast.Expr, ast.Assign)) and stmt.value is node:
                        nxt = block[index + 1] if index + 1 < len(block) else None
                        if isinstance(nxt, ast.Try) and nxt.finalbody:
                            final_src = "\n".join(_dotted_text(s) for s in nxt.finalbody)
                            if "end_span" in final_src:
                                return
                        break
        self._report(
            "RPR007",
            node,
            "bare start_span(...) call; open spans only via `with tracer.span(...)` "
            "(or guard with try/finally end_span) so an exception cannot leak an "
            "open span onto the thread's stack",
        )

    def _check_bridge_post(self, node: ast.Attribute) -> None:
        if node.attr != "post":
            return
        if self._in_post_whitelist():
            return
        if _BRIDGE_NAME.search(_terminal_name(node.value)) or (
            isinstance(node.value, ast.Name) and node.value.id == "CompletionBridge"
        ):
            self._report(
                "RPR006",
                node,
                "CompletionBridge.post referenced outside repro.wei.drivers; "
                "completions must be posted only by driver-owned threads wired "
                "up through DriverRegistry",
            )

    # -- dispatch ---------------------------------------------------------
    def run(self, tree: ast.Module) -> List[LintViolation]:
        # Two passes: imports first (a call above its import is illegal
        # anyway), then the rule walk with an ancestor stack.
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                self.visit_Import(node)
            elif isinstance(node, ast.ImportFrom):
                self.visit_ImportFrom(node)
        self._walk(tree, [])
        return self.violations

    def _walk(self, node: ast.AST, ancestors: List[ast.AST]) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            held, self._held_locks = self._held_locks, []
            try:
                self._walk_children(node, ancestors)
            finally:
                self._held_locks = held
            return
        if isinstance(node, ast.With):
            lock_exprs = [
                _dotted_text(item.context_expr)
                for item in node.items
                if _is_lock_like(item.context_expr)
            ]
            self._held_locks.extend(lock_exprs)
            try:
                self._walk_children(node, ancestors)
            finally:
                del self._held_locks[len(self._held_locks) - len(lock_exprs) :]
            return
        if isinstance(node, ast.Call):
            self._check_sleep(node)
            self._check_blocking_in_lock(node)
            self._check_thread_ctor(node)
            self._check_random(node)
            self._check_bare_acquire(node, ancestors)
            self._check_start_span(node, ancestors)
        if isinstance(node, ast.Attribute):
            self._check_bridge_post(node)
        self._walk_children(node, ancestors)

    def _walk_children(self, node: ast.AST, ancestors: List[ast.AST]) -> None:
        ancestors.append(node)
        try:
            for child in ast.iter_child_nodes(node):
                self._walk(child, ancestors)
        finally:
            ancestors.pop()


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def lint_file(path: Path, *, display_path: Optional[str] = None) -> List[LintViolation]:
    """Lint one Python file; returns its violations (empty when clean)."""
    path = Path(path)
    source = path.read_text(encoding="utf-8")
    shown = display_path if display_path is not None else str(path)
    try:
        tree = ast.parse(source, filename=shown)
    except SyntaxError as exc:
        return [
            LintViolation(
                rule="RPR000",
                path=shown,
                line=exc.lineno or 0,
                col=exc.offset or 0,
                message=f"file does not parse: {exc.msg}",
            )
        ]
    linter = _FileLinter(shown, source.splitlines(), posix_path=path.resolve().as_posix())
    return linter.run(tree)


def _iter_python_files(paths: Sequence[Path]) -> List[Path]:
    files: List[Path] = []
    for path in paths:
        path = Path(path)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
        else:
            raise FileNotFoundError(f"not a Python file or directory: {path}")
    return files


def lint_paths(paths: Sequence[Path]) -> Tuple[List[LintViolation], int]:
    """Lint every ``*.py`` under ``paths``; returns (violations, files checked)."""
    files = _iter_python_files(paths)
    violations: List[LintViolation] = []
    for file_path in files:
        violations.extend(lint_file(file_path, display_path=str(file_path)))
    violations.sort(key=lambda v: (v.path, v.line, v.rule))
    return violations, len(files)


def run_lint(
    paths: Sequence[Path], baseline: Optional[Baseline] = None
) -> Tuple[List[LintViolation], List[LintViolation], int]:
    """Lint ``paths``; returns (active, suppressed, files checked)."""
    violations, checked = lint_paths(paths)
    if baseline is None:
        return violations, [], checked
    active = [v for v in violations if not baseline.suppresses(v)]
    suppressed = [v for v in violations if baseline.suppresses(v)]
    return active, suppressed, checked


def render_text(
    active: Sequence[LintViolation], suppressed: Sequence[LintViolation], checked: int
) -> str:
    """Human-readable report (one ``path:line:col rule message`` per finding)."""
    lines = [
        f"{v.path}:{v.line}:{v.col}: {v.rule} {v.message}" for v in active
    ]
    summary = f"checked {checked} file(s): {len(active)} violation(s)"
    if suppressed:
        summary += f", {len(suppressed)} baselined"
    if not active:
        summary = f"checked {checked} file(s): clean" + (
            f" ({len(suppressed)} baselined)" if suppressed else ""
        )
    lines.append(summary)
    return "\n".join(lines)


def render_json(
    active: Sequence[LintViolation], suppressed: Sequence[LintViolation], checked: int
) -> str:
    """Machine-readable report (the CI artifact schema, stable and versioned)."""
    counts: Dict[str, int] = {}
    for violation in active:
        counts[violation.rule] = counts.get(violation.rule, 0) + 1
    return json.dumps(
        {
            "version": 1,
            "checked_files": checked,
            "violations": [v.to_dict() for v in active],
            "suppressed": [v.to_dict() for v in suppressed],
            "counts": counts,
            "ok": not active,
        },
        indent=2,
        sort_keys=True,
    )
