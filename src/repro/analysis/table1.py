"""Table 1: proposed SDL metrics for the B = 1 colour-picker run.

The benchmark harness runs the B = 1, N = 128 experiment, computes the same
metrics from the simulated run, and prints them side by side with the values
the paper reports for its physical workcell.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.analysis.report import format_table
from repro.core.metrics import PAPER_TABLE1, SdlMetrics
from repro.utils.units import format_duration

__all__ = ["table1_comparison", "render_table1"]

_ROWS: List[Tuple[str, str, bool]] = [
    # (metric key, display label, format as duration?)
    ("time_without_humans_s", "Time without humans", True),
    ("commands_completed", "Completed commands without humans", False),
    ("synthesis_time_s", "Synthesis time", True),
    ("transfer_time_s", "Transfer time", True),
    ("total_colors", "Total colors mixed", False),
    ("time_per_color_s", "Time per color", True),
]


def table1_comparison(metrics: SdlMetrics) -> List[Dict[str, object]]:
    """Paper-vs-measured comparison rows for every Table 1 metric."""
    measured = metrics.to_dict()
    measured["commands_completed"] = metrics.commands_completed
    measured["total_colors"] = metrics.total_colors
    rows = []
    for key, label, _ in _ROWS:
        paper_value = PAPER_TABLE1[key]
        measured_value = float(measured[key])
        ratio = measured_value / paper_value if paper_value else float("nan")
        rows.append(
            {
                "metric": label,
                "key": key,
                "paper": paper_value,
                "measured": measured_value,
                "ratio": ratio,
            }
        )
    return rows


def render_table1(metrics: SdlMetrics) -> str:
    """Render the paper-vs-measured Table 1 comparison as text."""
    rows = []
    for row, (_, _, is_duration) in zip(table1_comparison(metrics), _ROWS):
        if is_duration:
            paper_text = format_duration(row["paper"])
            measured_text = format_duration(row["measured"])
        else:
            paper_text = f"{row['paper']:.0f}"
            measured_text = f"{row['measured']:.0f}"
        rows.append((row["metric"], paper_text, measured_text, f"{row['ratio']:.2f}x"))
    return format_table(
        headers=["Metric", "Paper (B=1)", "Measured (B=1)", "ratio"],
        rows=rows,
        title="Table 1 reproduction: proposed SDL metrics, batch size 1",
    )
