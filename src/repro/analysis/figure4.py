"""Figure 4: best score so far vs. elapsed time, per batch size.

The paper's Figure 4 plots, for each of seven experiments (batch sizes 1 to
64, 128 samples each, target RGB (120, 120, 120)), the Euclidean RGB distance
of the best colour seen so far against the elapsed experiment time.  The
expected shape: "experiments with smaller batch sizes achieve lower scores,
but take longer to run."
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.analysis.report import ascii_scatter, format_table
from repro.core.batch import BatchSweepResult

__all__ = ["figure4_series", "figure4_summary_rows", "render_figure4"]


def figure4_series(sweep: BatchSweepResult) -> Dict[str, Tuple[np.ndarray, np.ndarray]]:
    """Extract the per-batch-size (minutes, best-so-far) series from a sweep."""
    return {str(size): sweep.trajectory(size) for size in sweep.batch_sizes}


def figure4_summary_rows(sweep: BatchSweepResult):
    """One summary row per batch size: total time, final best score, time/colour."""
    rows = []
    for size in sweep.batch_sizes:
        result = sweep.experiments[size]
        minutes = result.elapsed_s / 60.0
        time_per_color = (
            result.metrics.time_per_color_s / 60.0 if result.metrics else float("nan")
        )
        rows.append(
            (
                size,
                result.n_samples,
                f"{minutes:.1f}",
                f"{result.best_score:.2f}",
                f"{time_per_color:.2f}",
            )
        )
    return rows


def render_figure4(sweep: BatchSweepResult) -> str:
    """Render the Figure 4 scatter plot and its summary table as text."""
    series = figure4_series(sweep)
    plot = ascii_scatter(
        series,
        x_label="elapsed time in experiment (minutes)",
        y_label="best score so far (RGB distance)",
        title="Figure 4 reproduction: batch-size sweep, N samples per experiment",
    )
    table = format_table(
        headers=["batch size", "samples", "total minutes", "final best score", "min/color"],
        rows=figure4_summary_rows(sweep),
        title="Per-batch-size summary",
    )
    return plot + "\n\n" + table


def check_figure4_shape(sweep: BatchSweepResult) -> Dict[str, bool]:
    """Qualitative shape checks corresponding to the paper's observations.

    Returns a dict of named boolean checks:

    * ``small_batches_slower`` -- B = 1 takes longer (wall clock) than B = 64,
    * ``small_batches_better`` -- the best score of the smallest batch size is
      at least as good as that of the largest (allowing a small noise margin),
    * ``all_within_budget`` -- every experiment produced exactly its budget.
    """
    sizes = sweep.batch_sizes
    smallest, largest = sizes[0], sizes[-1]
    times = sweep.total_times_minutes()
    scores = sweep.final_scores()
    return {
        "small_batches_slower": times[smallest] > times[largest],
        "small_batches_better": scores[smallest] <= scores[largest] + 5.0,
        "all_within_budget": all(
            sweep.experiments[size].n_samples == sweep.experiments[sizes[0]].config.n_samples
            for size in sizes
        ),
    }
