"""Seeded chaos schedules for the framed wire protocol.

A :class:`ChaosSchedule` is the adversary the soak harness runs campaigns
against: it decides, for every frame transmission on a
:class:`~repro.wei.drivers.protocol.WireProtocolTransport`'s pipe, whether
that transmission is dropped, corrupted, duplicated, delayed, or whether the
link is severed outright.  Two properties make it a *schedule* rather than
mere noise:

**Exact replayability.**  Decisions are not drawn from a shared RNG stream
(whose draw order would depend on thread timing) but derived independently
per transmission from the tuple ``(seed, direction, kind, seq, attempt)`` --
``direction`` names the transport and which way the frame travels, ``kind``
the frame type (so an ``ACK`` and a ``COMPLETE`` that happen to share a
sequence number draw independent fates), ``seq`` is the frame's protocol
sequence number and ``attempt`` counts its retransmissions.  The mapping
uses :func:`zlib.crc32` (stable across
processes and Python versions, unlike ``hash``), so the same seed perturbs
the same logical frames in the same way on every run, no matter how the
threads interleave.  A failing soak seed is therefore a complete repro
recipe.

**Guaranteed liveness.**  Without care, a schedule could starve a frame
forever (drop every retransmission) and turn "chaos" into "hang".  Two
guards prevent that deterministically: from ``clean_after`` attempts on, a
transmission is always delivered untouched -- so every retry loop terminates
-- and the total number of injected disconnects is capped at
``max_disconnects``.  Chaos may cost retries, resyncs and wall time; it can
never cost an action.

Every injected fault is recorded in :attr:`ChaosSchedule.events` (a bounded,
thread-safe log) so the soak harness can dump exactly what was done to the
wire alongside a failure report.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Any, Dict, List

from repro.analysis.runtime import make_lock
from repro.obs import metrics as obs_metrics
from repro.obs import tracer as obs_tracer

__all__ = ["ChaosDecision", "ChaosSchedule"]

#: Keep at most this many chaos events in the in-memory log; soak campaigns
#: inject thousands of faults and only the log's tail matters for debugging.
MAX_EVENTS = 10_000


@dataclass(frozen=True)
class ChaosDecision:
    """What happens to one frame transmission."""

    drop: bool = False
    corrupt: bool = False
    duplicate: bool = False
    delay_s: float = 0.0
    disconnect: bool = False

    @property
    def clean(self) -> bool:
        """True when the transmission is delivered exactly as sent."""
        return not (self.drop or self.corrupt or self.duplicate or self.disconnect) and self.delay_s == 0.0


def _unit_draws(
    seed: int, direction: str, kind: str, seq: int, attempt: int, n: int
) -> List[float]:
    """``n`` reproducible uniform(0,1) draws for one transmission identity.

    Each draw chains CRC32 over the identity string, giving a stable,
    process-independent pseudo-random sequence (``hash()`` would vary with
    ``PYTHONHASHSEED``; a shared ``random.Random`` would vary with thread
    interleaving).  Statistical quality is ample for fault rates.
    """
    state = zlib.crc32(f"{seed}|{direction}|{kind}|{seq}|{attempt}".encode("utf-8"))
    draws = []
    for index in range(n):
        state = zlib.crc32(f"{state}:{index}".encode("utf-8"), state)
        draws.append((state & 0xFFFFFF) / float(1 << 24))
    return draws


class ChaosSchedule:
    """Deterministic, seeded fault schedule for a framed transport.

    Parameters are per-transmission probabilities; faults are mutually
    exclusive in precedence order disconnect > drop > corrupt > duplicate >
    delay (a single transmission suffers at most one).  ``seed`` fully
    determines every decision; see the module docstring for the replay and
    liveness guarantees.

    One schedule may be shared by several transports (the soak harness
    shares one across every workcell of a fleet): decisions are keyed by the
    transport-qualified ``direction`` string, so sharing changes nothing
    about determinism, and the disconnect cap applies fleet-wide.
    """

    def __init__(
        self,
        seed: int,
        *,
        drop_rate: float = 0.08,
        corrupt_rate: float = 0.08,
        duplicate_rate: float = 0.08,
        delay_rate: float = 0.10,
        max_delay_s: float = 0.002,
        disconnect_rate: float = 0.01,
        max_disconnects: int = 3,
        clean_after: int = 6,
    ):
        for label, rate in (
            ("drop_rate", drop_rate),
            ("corrupt_rate", corrupt_rate),
            ("duplicate_rate", duplicate_rate),
            ("delay_rate", delay_rate),
            ("disconnect_rate", disconnect_rate),
        ):
            if not (0.0 <= rate <= 1.0):
                raise ValueError(f"{label} must be in [0, 1], got {rate}")
        if max_delay_s < 0:
            raise ValueError(f"max_delay_s must be >= 0, got {max_delay_s}")
        if clean_after < 1:
            raise ValueError(f"clean_after must be >= 1, got {clean_after}")
        if max_disconnects < 0:
            raise ValueError(f"max_disconnects must be >= 0, got {max_disconnects}")
        self.seed = int(seed)
        self.drop_rate = drop_rate
        self.corrupt_rate = corrupt_rate
        self.duplicate_rate = duplicate_rate
        self.delay_rate = delay_rate
        self.max_delay_s = max_delay_s
        self.disconnect_rate = disconnect_rate
        self.max_disconnects = max_disconnects
        self.clean_after = clean_after
        # Instrumentable (repro.analysis.runtime): chaos decisions fire from
        # engine, reader and device threads while their own locks are held.
        self._lock = make_lock("chaos-schedule")
        # Counters live on the metrics registry (mutated under self._lock,
        # like the plain ints they replaced); the per-event-kind series are
        # created lazily in record().
        registry = obs_metrics.get_registry()
        self._labels = {"seed": str(self.seed), "instance": obs_metrics.next_instance()}
        self._m_injected = registry.counter("chaos_injections_total", self._labels)
        self._m_disconnects = registry.counter("chaos_disconnects_total", self._labels)
        #: Injected-fault log: ``{direction, kind, seq, attempt, event}`` in
        #: injection order (bounded to the most recent ``MAX_EVENTS``).
        self.events: List[Dict[str, Any]] = []

    # ------------------------------------------------------------------
    def decide(self, direction: str, seq: int, attempt: int, kind: str = "") -> ChaosDecision:
        """The fate of transmission ``attempt`` of ``kind`` frame ``seq`` on ``direction``.

        ``kind`` distinguishes frame types whose sequence numbers come from
        independent counters (a device's ``ACK`` for submit 0 and its
        ``COMPLETE`` 0 must not share a fate).  Pure in everything except
        the disconnect cap: the same arguments always yield the same base
        decision, and only whether a *disconnect* fires can additionally
        depend on how many the schedule already spent.
        """
        if attempt >= self.clean_after:
            # Liveness guard: a frame retried this often always gets through.
            return ChaosDecision()
        draw, delay_draw = _unit_draws(self.seed, direction, kind, seq, attempt, 2)
        edge = self.disconnect_rate
        if draw < edge:
            with self._lock:
                if int(self._m_disconnects.value) < self.max_disconnects:
                    self._m_disconnects.inc()
                    return ChaosDecision(disconnect=True)
            return ChaosDecision()  # cap reached: deliver instead
        edge += self.drop_rate
        if draw < edge:
            return ChaosDecision(drop=True)
        edge += self.corrupt_rate
        if draw < edge:
            return ChaosDecision(corrupt=True)
        edge += self.duplicate_rate
        if draw < edge:
            return ChaosDecision(duplicate=True)
        edge += self.delay_rate
        if draw < edge:
            return ChaosDecision(delay_s=delay_draw * self.max_delay_s)
        return ChaosDecision()

    def record(self, direction: str, frame: Any, attempt: int, event: str) -> None:
        """Log one injected fault (called by the protocol layer)."""
        kind = getattr(frame, "kind", "?")
        seq = getattr(frame, "seq", -1)
        per_event = obs_metrics.get_registry().counter(
            "chaos_injections_by_event_total", {**self._labels, "event": event}
        )
        with self._lock:
            self._m_injected.inc()
            per_event.inc()
            if len(self.events) >= MAX_EVENTS:
                del self.events[: MAX_EVENTS // 2]
            self.events.append(
                {
                    "direction": direction,
                    "kind": kind,
                    "seq": seq,
                    "attempt": attempt,
                    "event": event,
                }
            )
        # Fires inside the transmitting thread's open "wire.frame" span, so
        # the injection shows up in the trace as a child point event.
        obs_tracer.event(
            "chaos.inject",
            event=event,
            kind=kind,
            seq=seq,
            attempt=attempt,
            direction=direction,
        )

    # ------------------------------------------------------------------
    @property
    def faults_injected(self) -> int:
        """Total faults injected so far (all kinds, all transports)."""
        with self._lock:
            return int(self._m_injected.value)

    @property
    def disconnects_injected(self) -> int:
        """Link severances injected so far (capped at ``max_disconnects``)."""
        with self._lock:
            return int(self._m_disconnects.value)

    def describe(self) -> Dict[str, Any]:
        """JSON-serialisable configuration + counters (for soak logs)."""
        with self._lock:
            return {
                "seed": self.seed,
                "drop_rate": self.drop_rate,
                "corrupt_rate": self.corrupt_rate,
                "duplicate_rate": self.duplicate_rate,
                "delay_rate": self.delay_rate,
                "max_delay_s": self.max_delay_s,
                "disconnect_rate": self.disconnect_rate,
                "max_disconnects": self.max_disconnects,
                "clean_after": self.clean_after,
                "faults_injected": int(self._m_injected.value),
                "disconnects_injected": int(self._m_disconnects.value),
            }
