"""Chaos engineering for the workcell transport layer.

:mod:`repro.wei.chaos.schedule` provides :class:`ChaosSchedule` -- a seeded,
exactly-replayable per-frame fault schedule (drop / corrupt / duplicate /
delay / disconnect) for the framed wire protocol -- and
:mod:`repro.wei.chaos.soak` the soak harness that runs multi-workcell
campaigns through it and asserts the paper's invariant: chaos may change
wall time and retry counts, never the science.

``soak`` is intentionally *not* imported here: it sits above
:mod:`repro.core.campaign` in the layering, while the schedule itself is
imported *by* the campaign layer (``transport="wire"``).  Import the harness
explicitly: ``from repro.wei.chaos.soak import run_soak``.
"""

from repro.wei.chaos.schedule import ChaosDecision, ChaosSchedule

__all__ = ["ChaosDecision", "ChaosSchedule"]
