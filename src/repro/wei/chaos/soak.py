"""The deterministic soak harness: chaos campaigns vs the sim baseline.

The paper's claim -- identical science under concurrent, hardware-paced
fleet execution -- is only credible if it survives a lossy wire and
adversarial fault interleavings.  :func:`run_soak` is the proof machine: it
runs one multi-workcell campaign in pure simulation to establish the
baseline fingerprint, then replays the *same* campaign over the framed wire
protocol once per chaos seed, each time under a fresh
:class:`~repro.wei.chaos.ChaosSchedule`, and asserts the soak invariant:

    Chaos may change wall time and retry counts.  It may never change
    scores, run counts, or portal contents.

A fingerprint (:func:`campaign_fingerprint`) covers exactly the science: the
set of run indexes, every sample's well / volumes / measured RGB / score,
and each run's simulated timings.  Wall-clock fields, retry counters and
workcell/lane placement metadata are deliberately excluded -- those are the
things chaos is *allowed* to move.

Every case's verdict, transport recovery counters and injected-fault log
are collected into a :class:`SoakReport`; :meth:`SoakReport.write_logs`
dumps them as JSON (one file per seed plus a summary), which is what the CI
soak job uploads as artifacts when a seed breaks the invariant.  Because
chaos decisions are keyed by frame identity, re-running ``python -m repro
soak --seeds <the failing seed>`` replays the exact fault schedule.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.core.campaign import CampaignResult, run_campaign
from repro.obs import recorder as obs_recorder
from repro.publish.portal import DataPortal
from repro.wei.chaos.schedule import ChaosSchedule

__all__ = [
    "DEFAULT_SEED_MATRIX",
    "campaign_fingerprint",
    "SoakCase",
    "SoakReport",
    "run_soak",
]

#: The default chaos-seed matrix (CI runs exactly these).  Three seeds keep
#: the non-blocking soak job fast; a nightly or local run can pass a wider
#: matrix through ``python -m repro soak --seeds ...``.
DEFAULT_SEED_MATRIX = (101, 202, 303)


def _round9(values: List[float]) -> List[float]:
    """``[round(v, 9) for v in values]``, vectorised but bit-identical.

    ``np.round`` scales by ``1e9``, rints and divides back, which
    double-rounds: for a value whose scaled form lands within a few ulps of
    a ``k + 0.5`` boundary it can pick the other side than Python's
    correctly-rounded ``round``.  Those boundary cases are detectable from
    the scaled value alone, so this routine rounds everything with numpy and
    re-rounds only the risky elements (empirically ~1 in 10^4) with the
    builtin.  Non-finite values always take the builtin path, preserving its
    exact semantics (``round(inf, 9)`` is ``inf``, NaN stays NaN).
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        return []
    scaled = arr * 1e9
    with np.errstate(invalid="ignore"):  # inf/NaN land in the unsafe set
        frac = np.abs(scaled - np.floor(scaled) - 0.5)
        # A wrong rint can only happen within ~1 ulp of the half-way point; 8
        # ulps (plus a floor for tiny values) is a comfortably conservative band.
        tol = np.spacing(np.abs(scaled)) * 8.0 + 1e-9
        safe = (frac > tol) & np.isfinite(scaled)
    out = np.round(arr, 9)
    if not safe.all():
        for index in np.flatnonzero(~safe):
            out[index] = round(float(arr[index]), 9)
    return out.tolist()


def campaign_fingerprint(campaign: CampaignResult) -> Dict[str, Any]:
    """The science-only fingerprint of a campaign, keyed by run index.

    Everything in here must be bit-identical between the sim baseline and
    any chaos-injected wire campaign with the same campaign seed; anything
    chaos may legitimately change (wall time, retries, placement metadata)
    is excluded.  Portal records are the source, so the fingerprint also
    proves the streamed portal contents -- not just the in-memory results --
    survived the chaos.

    Rounding used to be the hot spot (eight ``round`` calls per sample, and
    a 10k-run campaign has ~10^5 samples), so the builder makes two passes:
    one flattening every value to round into a single buffer for
    :func:`_round9`, one rebuilding the per-run dicts by slicing the rounded
    stream back out.  The output is bit-identical to the obvious
    one-pass/``round`` formulation.
    """
    records = campaign.portal.search(experiment_id=campaign.experiment_id)
    # Pass 1: flatten volumes, rgb and score of every sample into one buffer.
    flat: List[float] = []
    extend = flat.extend
    for record in records:
        for sample in record.samples:
            extend(sample.volumes_ul.values())
            extend(sample.measured_rgb)
            flat.append(sample.score)
    best_at = len(flat)
    extend(run.best_score for run in campaign.runs)
    rounded = _round9(flat)
    # Pass 2: rebuild the nested structure by slicing the rounded stream.
    runs: Dict[str, Any] = {}
    pos = 0
    for record in records:
        samples = []
        for sample in record.samples:
            names = sample.volumes_ul
            n_vol = len(names)
            n_rgb = len(sample.measured_rgb)
            end = pos + n_vol + n_rgb
            samples.append(
                [
                    sample.sample_index,
                    sample.well,
                    dict(zip(names, rounded[pos : pos + n_vol])),
                    rounded[pos + n_vol : end],
                    rounded[end],
                ]
            )
            pos = end + 1
        runs[str(record.run_index)] = {
            "run_id": record.run_id,
            "target_rgb": list(record.target_rgb),
            "solver": record.solver,
            "samples": samples,
        }
    return {
        "experiment_runs": campaign.n_runs,
        "total_samples": campaign.total_samples,
        "portal_run_count": len(records),
        "best_scores": rounded[best_at:],
        "runs": runs,
    }


def _diff_fingerprints(baseline: Dict[str, Any], candidate: Dict[str, Any]) -> List[str]:
    """Human-readable mismatches between two fingerprints (empty = identical)."""
    mismatches: List[str] = []
    if baseline == candidate:
        # The soak invariant holding is the overwhelmingly common case, and
        # dict equality is one C-level deep compare -- skip the per-run walk.
        return mismatches
    for key in ("experiment_runs", "total_samples", "portal_run_count", "best_scores"):
        if baseline[key] != candidate[key]:
            mismatches.append(f"{key}: baseline {baseline[key]!r} != chaos {candidate[key]!r}")
    baseline_runs, candidate_runs = baseline["runs"], candidate["runs"]
    if baseline_runs == candidate_runs:
        return mismatches
    # One sorted merge pass over the union of run keys classifies every run
    # as missing / extra / differing (the old three-set version built and
    # sorted three intermediate sets).
    missing: List[str] = []
    extra: List[str] = []
    differing: List[str] = []
    sentinel = object()
    for run_index in sorted(set(baseline_runs) | set(candidate_runs), key=int):
        base_run = baseline_runs.get(run_index, sentinel)
        cand_run = candidate_runs.get(run_index, sentinel)
        if cand_run is sentinel:
            missing.append(run_index)
        elif base_run is sentinel:
            extra.append(run_index)
        elif base_run != cand_run:
            differing.append(run_index)
    if missing:
        mismatches.append(f"portal lost runs: {missing}")
    if extra:
        mismatches.append(f"portal grew runs: {extra}")
    for run_index in differing:
        mismatches.append(f"run {run_index}: record contents differ")
    return mismatches


@dataclass
class SoakCase:
    """One chaos seed's verdict against the sim baseline."""

    chaos_seed: int
    ok: bool
    mismatches: List[str] = field(default_factory=list)
    wall_s: float = 0.0
    makespan_s: float = 0.0
    #: The campaign's transport report: delivered/latency plus the recovery
    #: counters (retries, resyncs, crc_errors, ...).
    transport_stats: Dict[str, Any] = field(default_factory=dict)
    #: The chaos schedule's configuration and injected-fault totals.
    chaos: Dict[str, Any] = field(default_factory=dict)
    #: Tail of the injected-fault log (what exactly was done to the wire).
    chaos_events: List[Dict[str, Any]] = field(default_factory=list)
    #: Fingerprint of the chaos campaign -- only retained on mismatch, where
    #: it is the debugging artefact.
    fingerprint: Optional[Dict[str, Any]] = None
    error: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form (per-seed soak log)."""
        return {
            "chaos_seed": self.chaos_seed,
            "ok": self.ok,
            "mismatches": self.mismatches,
            "wall_s": self.wall_s,
            "makespan_s": self.makespan_s,
            "transport_stats": self.transport_stats,
            "chaos": self.chaos,
            "chaos_events": self.chaos_events,
            "fingerprint": self.fingerprint,
            "error": self.error,
        }


@dataclass
class SoakReport:
    """The whole soak run: baseline fingerprint + one :class:`SoakCase` per seed."""

    baseline: Dict[str, Any]
    baseline_makespan_s: float
    cases: List[SoakCase] = field(default_factory=list)
    config: Dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when every seed upheld the soak invariant."""
        return all(case.ok for case in self.cases)

    @property
    def failures(self) -> List[SoakCase]:
        """The cases that broke the invariant (or errored), if any."""
        return [case for case in self.cases if not case.ok]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable summary (baseline fingerprint elided to its shape)."""
        return {
            "ok": self.ok,
            "config": self.config,
            "baseline_makespan_s": self.baseline_makespan_s,
            "baseline_runs": self.baseline["portal_run_count"],
            "baseline_samples": self.baseline["total_samples"],
            "cases": [case.to_dict() for case in self.cases],
        }

    def write_logs(self, directory: str) -> List[str]:
        """Dump the frame/event logs: one JSON per seed plus ``summary.json``.

        Returns the written paths.  This is the artefact set the CI soak job
        uploads on failure -- enough to replay and diagnose a broken seed
        without re-running anything else.
        """
        root = Path(directory)
        root.mkdir(parents=True, exist_ok=True)
        written: List[str] = []
        for case in self.cases:
            path = root / f"soak-seed-{case.chaos_seed}.json"
            path.write_text(json.dumps(case.to_dict(), indent=2, sort_keys=True))
            written.append(str(path))
        summary = root / "summary.json"
        payload = self.to_dict()
        payload["baseline_fingerprint"] = self.baseline
        summary.write_text(json.dumps(payload, indent=2, sort_keys=True))
        written.append(str(summary))
        return written


def run_soak(
    *,
    n_runs: int = 3,
    samples_per_run: int = 4,
    batch_size: int = 2,
    n_workcells: int = 2,
    n_ot2: int = 1,
    solver: str = "evolutionary",
    campaign_seed: int = 816,
    seeds: Sequence[int] = DEFAULT_SEED_MATRIX,
    speedup: float = 500_000.0,
    completion_timeout_s: float = 60.0,
    chaos_kwargs: Optional[Dict[str, Any]] = None,
    keep_events: int = 200,
    on_case: Optional[Callable[[SoakCase], None]] = None,
    flight_dir: Optional[str] = None,
) -> SoakReport:
    """Run the chaos soak matrix and report the invariant's verdict per seed.

    One sim-transport baseline campaign is fingerprinted, then the same
    campaign (same ``campaign_seed``, shards, lanes and assignment policy)
    is executed over the framed wire protocol once per entry of ``seeds``,
    each under ``ChaosSchedule(seed, **chaos_kwargs)``.  ``on_case`` fires
    after each seed's verdict (the CLI uses it for live progress).

    A mismatching or crashing seed never aborts the matrix: its case is
    recorded as failed (with the mismatch list or the exception) and the
    remaining seeds still run, so one bad seed yields a complete report.

    When a :class:`~repro.obs.recorder.FlightRecorder` is installed, any
    seed that breaks the invariant (or crashes) also dumps the recorder's
    ring of recent spans/events -- into ``flight_dir`` when given, else
    wherever ``REPRO_OBS_FLIGHT_DIR`` points.
    """
    config = {
        "n_runs": n_runs,
        "samples_per_run": samples_per_run,
        "batch_size": batch_size,
        "n_workcells": n_workcells,
        "n_ot2": n_ot2,
        "solver": solver,
        "campaign_seed": campaign_seed,
        "seeds": list(seeds),
        "speedup": speedup,
    }
    shared: Dict[str, Any] = dict(
        n_runs=n_runs,
        samples_per_run=samples_per_run,
        batch_size=batch_size,
        solver=solver,
        seed=campaign_seed,
        n_workcells=n_workcells,
        n_ot2=n_ot2,
    )
    # Baseline and every chaos case share one experiment id (each campaign
    # writes to its own portal, so there is no collision): run ids and every
    # other portal field must then match *verbatim*, not just structurally.
    baseline_campaign = run_campaign(
        experiment_id="soak", portal=DataPortal(), **shared
    )
    baseline = campaign_fingerprint(baseline_campaign)
    report = SoakReport(
        baseline=baseline,
        baseline_makespan_s=baseline_campaign.makespan_s,
        config=config,
    )
    for chaos_seed in seeds:
        report.cases.append(
            _run_case(
                chaos_seed,
                baseline,
                shared,
                speedup=speedup,
                completion_timeout_s=completion_timeout_s,
                chaos_kwargs=chaos_kwargs,
                keep_events=keep_events,
                flight_dir=flight_dir,
            )
        )
        if on_case is not None:
            on_case(report.cases[-1])
    return report


def _run_case(
    chaos_seed: int,
    baseline: Dict[str, Any],
    shared: Dict[str, Any],
    *,
    speedup: float,
    completion_timeout_s: float,
    chaos_kwargs: Optional[Dict[str, Any]],
    keep_events: int,
    flight_dir: Optional[str] = None,
) -> SoakCase:
    """Execute one chaos seed's campaign and judge it against the baseline."""
    chaos = ChaosSchedule(chaos_seed, **(chaos_kwargs or {}))
    wall_start = time.monotonic()
    try:
        campaign = run_campaign(
            experiment_id="soak",
            portal=DataPortal(),
            transport="wire",
            speedup=speedup,
            completion_timeout_s=completion_timeout_s,
            chaos=chaos,
            **shared,
        )
    except Exception as exc:  # a crash is a failed case, not a failed matrix
        obs_recorder.flight_dump(
            "soak-campaign-error",
            directory=flight_dir,
            chaos_seed=chaos_seed,
            error=f"{type(exc).__name__}: {exc}",
        )
        return SoakCase(
            chaos_seed=chaos_seed,
            ok=False,
            mismatches=[f"campaign raised {type(exc).__name__}: {exc}"],
            wall_s=time.monotonic() - wall_start,
            chaos=chaos.describe(),
            chaos_events=chaos.events[-keep_events:],
            error=f"{type(exc).__name__}: {exc}",
        )
    fingerprint = campaign_fingerprint(campaign)
    mismatches = _diff_fingerprints(baseline, fingerprint)
    ok = not mismatches
    if not ok:
        obs_recorder.flight_dump(
            "soak-invariant-break",
            directory=flight_dir,
            chaos_seed=chaos_seed,
            mismatches=mismatches[:20],
        )
    return SoakCase(
        chaos_seed=chaos_seed,
        ok=ok,
        mismatches=mismatches,
        wall_s=time.monotonic() - wall_start,
        makespan_s=campaign.makespan_s,
        transport_stats=dict(campaign.transport_stats),
        chaos=chaos.describe(),
        chaos_events=chaos.events[-keep_events:],
        fingerprint=None if ok else fingerprint,
    )
