"""A simulation-backed reimplementation of the WEI science-factory platform.

The paper's application is written against the modular SDL architecture of
Vescovi et al. (reference [13] in the paper): *modules* encapsulate devices
and expose named actions, *workcells* are declaratively-configured sets of
modules, and *workflows* are declarative sequences of actions on modules that
applications invoke.  This package reproduces the pieces of that platform the
colour-picker application needs:

* :mod:`repro.wei.module` -- the module abstraction (device + action registry),
* :mod:`repro.wei.workcell` -- workcell assembly, including a YAML loader and
  the default colour-picker workcell factory,
* :mod:`repro.wei.workflow` -- declarative workflow specifications,
* :mod:`repro.wei.engine` -- the sequential workflow executor with retries
  and step timing records,
* :mod:`repro.wei.concurrent` -- the event-driven engine that interleaves
  many workflow runs / application programs over one shared workcell (the
  Section 4 multi-OT-2 ablation, executed) via the two-phase
  submit/complete action lifecycle,
* :mod:`repro.wei.coordinator` -- the multi-workcell coordinator that shards
  campaigns across several independent engines with least-finish-time
  (work-stealing) assignment and a merged record stream,
* :mod:`repro.wei.runlog` -- per-workflow-run timing files (the paper saves
  one per run for post-hoc analysis),
* :mod:`repro.wei.scheduler` -- resource-timeline planning used by the
  multi-OT-2 ablation.
"""

from repro.wei.concurrent import (
    ConcurrencyError,
    ConcurrentRun,
    ConcurrentWorkflowEngine,
    ProgramHandle,
)
from repro.wei.coordinator import MultiWorkcellCoordinator, ShardAssignment
from repro.wei.engine import StepResult, WorkflowEngine, WorkflowError, WorkflowRunResult
from repro.wei.module import ActionSubmission, Module, ModuleActionError
from repro.wei.runlog import RunLogger
from repro.wei.scheduler import ParallelMixPlan, plan_parallel_mixes
from repro.wei.workcell import Workcell, WorkcellConfigError, build_color_picker_workcell
from repro.wei.workflow import WorkflowSpec, WorkflowStep

__all__ = [
    "Module",
    "ModuleActionError",
    "Workcell",
    "WorkcellConfigError",
    "build_color_picker_workcell",
    "WorkflowSpec",
    "WorkflowStep",
    "WorkflowEngine",
    "WorkflowError",
    "WorkflowRunResult",
    "StepResult",
    "ConcurrentWorkflowEngine",
    "ConcurrencyError",
    "ConcurrentRun",
    "ProgramHandle",
    "MultiWorkcellCoordinator",
    "ShardAssignment",
    "ActionSubmission",
    "RunLogger",
    "plan_parallel_mixes",
    "ParallelMixPlan",
]
