"""Workcell assembly.

A workcell is a set of modules sharing a deck, a clock and (in simulation) a
duration table and fault injector -- "a declarative YAML notation is used to
specify how a workcell is configured from a set of modules" (paper
Section 2.2).  This module provides:

* :class:`Workcell` -- the container the engine executes workflows against,
* :func:`build_color_picker_workcell` -- the programmatic factory for the
  paper's five-module colour-picker workcell (optionally with extra OT-2s for
  the Section 4 ablation),
* :meth:`Workcell.from_yaml` -- construction from a declarative spec
  equivalent to the paper's RPL workcell YAML file.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from repro.color.mixing import DyeSet, MixingModel, SubtractiveMixingModel
from repro.hardware.barty import BartyDevice
from repro.hardware.camera import CameraDevice
from repro.hardware.deck import Workdeck
from repro.hardware.ot2 import Ot2Device
from repro.hardware.pf400 import Pf400Device
from repro.hardware.sciclops import SciclopsDevice
from repro.sim.clock import Clock, SimClock
from repro.sim.durations import DurationTable, paper_calibrated_durations
from repro.sim.faults import FaultInjector, FaultPolicy
from repro.utils import yamlite
from repro.utils.rng import RandomSource
from repro.vision.render import PlateImageConfig
from repro.wei.module import Module

__all__ = ["WorkcellConfigError", "Workcell", "build_color_picker_workcell"]


class WorkcellConfigError(ValueError):
    """Raised for invalid workcell specifications."""


@dataclass
class Workcell:
    """A named collection of modules sharing deck, clock and chemistry."""

    name: str
    deck: Workdeck
    clock: Clock
    modules: Dict[str, Module] = field(default_factory=dict)
    chemistry: MixingModel = field(default_factory=SubtractiveMixingModel)
    durations: DurationTable = field(default_factory=paper_calibrated_durations)
    metadata: Dict[str, Any] = field(default_factory=dict)

    def add_module(self, module: Module) -> None:
        """Register a module; names must be unique within the workcell."""
        if module.name in self.modules:
            raise WorkcellConfigError(f"duplicate module name {module.name!r}")
        self.modules[module.name] = module

    def module(self, name: str) -> Module:
        """Look up a module by name."""
        try:
            return self.modules[name]
        except KeyError:
            raise WorkcellConfigError(
                f"workcell {self.name!r} has no module {name!r}; available: {sorted(self.modules)}"
            ) from None

    def modules_of_type(self, module_type: str) -> List[Module]:
        """All modules whose device type matches ``module_type``."""
        return [module for module in self.modules.values() if module.module_type == module_type]

    def ot2_barty_pairs(self) -> List[tuple]:
        """``(ot2_name, barty_name)`` lane pairs in registration order.

        The colour-picker factory registers one barty replenisher per OT-2
        with a matching name suffix; concurrent campaign/sweep modes use
        these pairs to pin each experiment to its own liquid-handling lane.
        """
        pairs = []
        for module in self.modules.values():
            if module.module_type != "ot2":
                continue
            barty_name = "barty" + module.name[len("ot2"):]
            if barty_name in self.modules:
                pairs.append((module.name, barty_name))
        return pairs

    @property
    def devices(self) -> List:
        """The device instances behind all modules."""
        return [module.device for module in self.modules.values()]

    def total_commands(self, robotic_only: bool = True) -> int:
        """Total successful commands executed across the workcell's devices."""
        count = 0
        for device in self.devices:
            for record in device.action_log:
                if record.success and (record.robotic or not robotic_only):
                    count += 1
        return count

    def action_records(self) -> List:
        """All action records from every device, sorted by start time."""
        records = [record for device in self.devices for record in device.action_log]
        return sorted(records, key=lambda record: record.start_time)

    def reset_logs(self) -> None:
        """Clear all device action logs (between experiments sharing a workcell)."""
        for device in self.devices:
            device.reset_log()

    def describe(self) -> Dict[str, Any]:
        """Declarative description of the workcell (YAML-serialisable)."""
        return {
            "name": self.name,
            "modules": [module.describe() for module in self.modules.values()],
            "locations": self.deck.locations,
            "metadata": dict(self.metadata),
        }

    def to_yaml(self) -> str:
        """Serialise the workcell description to YAML-like text."""
        return yamlite.dumps(self.describe())

    # ------------------------------------------------------------------
    # Declarative construction
    # ------------------------------------------------------------------
    @classmethod
    def from_yaml(cls, text: str, **build_kwargs: Any) -> "Workcell":
        """Build a simulated workcell from a declarative YAML-like spec.

        The spec mirrors the structure of the paper's RPL workcell file: a
        ``name`` and a list of ``modules``, each with a ``type`` (one of
        ``sciclops``, ``pf400``, ``ot2``, ``barty``, ``camera``) and an
        optional ``name``.  Module types outside the colour-picker set raise
        :class:`WorkcellConfigError` -- the full RPL workcell also has PCR and
        cell-analysis modules, but this application targets only these five.
        """
        data = yamlite.loads(text)
        if not isinstance(data, Mapping) or "modules" not in data:
            raise WorkcellConfigError("workcell spec must be a mapping with a 'modules' list")
        module_specs = data["modules"]
        if not isinstance(module_specs, list) or not module_specs:
            raise WorkcellConfigError("workcell spec 'modules' must be a non-empty list")

        counts = {"sciclops": 0, "pf400": 0, "ot2": 0, "barty": 0, "camera": 0}
        for spec in module_specs:
            if not isinstance(spec, Mapping) or "type" not in spec:
                raise WorkcellConfigError(f"malformed module spec: {spec!r}")
            module_type = str(spec["type"]).lower()
            if module_type not in counts:
                raise WorkcellConfigError(
                    f"unsupported module type {module_type!r}; supported: {sorted(counts)}"
                )
            counts[module_type] += 1
        for required in ("pf400", "ot2", "camera"):
            if counts[required] == 0:
                raise WorkcellConfigError(f"workcell spec must include a {required!r} module")

        workcell = build_color_picker_workcell(
            name=str(data.get("name", "workcell")),
            n_ot2=max(counts["ot2"], 1),
            **build_kwargs,
        )
        workcell.metadata["source"] = "yaml"
        workcell.metadata["declared_modules"] = [dict(spec) for spec in module_specs]
        return workcell


def build_color_picker_workcell(
    name: str = "rpl_colorpicker",
    *,
    seed: Optional[int] = None,
    clock: Optional[Clock] = None,
    durations: Optional[DurationTable] = None,
    fault_policy: Optional[FaultPolicy] = None,
    chemistry: Optional[MixingModel] = None,
    dye_set: Optional[DyeSet] = None,
    image_config: Optional[PlateImageConfig] = None,
    n_ot2: int = 1,
    plates_per_tower: int = 20,
    reservoir_capacity_ul: float = 20_000.0,
    bulk_capacity_ul: float = 500_000.0,
) -> Workcell:
    """Build the paper's five-module colour-picker workcell in simulation.

    Parameters
    ----------
    seed:
        Root seed for every stochastic component (durations, camera noise,
        fault injection).  Two workcells built with the same seed behave
        identically.
    n_ot2:
        Number of OT-2 liquid handlers (1 in the paper; >1 for the Section 4
        "multiple OT2s" ablation).  Each extra OT-2 gets its own deck location
        and its own barty replenisher channel.
    plates_per_tower / bulk_capacity_ul:
        Consumable sizing: plates stocked in each sciclops tower and the µl
        of each dye in barty's bulk vessels.  The defaults match the paper's
        bench; long campaigns (e.g. the 10k-run routine bench) scale both up
        so the workcell never runs dry mid-campaign.
    """
    if n_ot2 < 1:
        raise WorkcellConfigError(f"n_ot2 must be >= 1, got {n_ot2}")

    randomness = RandomSource(seed)
    clock = clock if clock is not None else SimClock()
    durations = durations if durations is not None else paper_calibrated_durations()
    faults = FaultInjector(
        policy=fault_policy if fault_policy is not None else FaultPolicy.none(),
        rng=randomness.child("faults").generator,
    )
    dye_set = dye_set if dye_set is not None else DyeSet.cmyk()
    chemistry = chemistry if chemistry is not None else SubtractiveMixingModel(dye_set=dye_set)

    deck = Workdeck()
    workcell = Workcell(name=name, deck=deck, clock=clock, chemistry=chemistry, durations=durations)
    workcell.metadata["seed"] = seed
    workcell.metadata["n_ot2"] = n_ot2

    common = dict(clock=clock, durations=durations, faults=faults)

    sciclops = SciclopsDevice(
        deck, plates_per_tower=plates_per_tower, rng=randomness.child("sciclops").generator, **common
    )
    pf400 = Pf400Device(deck, rng=randomness.child("pf400").generator, **common)
    camera = CameraDevice(
        deck,
        chemistry=chemistry,
        image_config=image_config,
        rng=randomness.child("camera").generator,
        **common,
    )

    workcell.add_module(
        Module(
            "sciclops",
            sciclops,
            actions={"get_plate": sciclops.get_plate, "status": sciclops.status},
        )
    )
    workcell.add_module(
        Module(
            "pf400",
            pf400,
            actions={"transfer": pf400.transfer, "move_home": pf400.move_home},
        )
    )
    workcell.add_module(
        Module("camera", camera, actions={"take_picture": camera.take_picture})
    )

    for index in range(n_ot2):
        suffix = "" if index == 0 else f"_{index + 1}"
        ot2_name = f"ot2{suffix}"
        barty_name = f"barty{suffix}"
        ot2 = Ot2Device(
            deck,
            deck_location=f"{ot2_name}.deck",
            dye_set=dye_set,
            reservoir_capacity_ul=reservoir_capacity_ul,
            name=ot2_name,
            rng=randomness.child(ot2_name).generator,
            **common,
        )
        barty = BartyDevice(
            ot2,
            bulk_capacity_ul=bulk_capacity_ul,
            name=barty_name,
            rng=randomness.child(barty_name).generator,
            **common,
        )
        workcell.add_module(
            Module(
                ot2_name,
                ot2,
                actions={"run_protocol": ot2.run_protocol, "replace_tips": ot2.replace_tips},
            )
        )
        workcell.add_module(
            Module(
                barty_name,
                barty,
                actions={
                    "fill_colors": barty.fill_colors,
                    "drain_colors": barty.drain_colors,
                    "refill_colors": barty.refill_colors,
                },
            )
        )

    return workcell
