"""Declarative workflow specifications.

Workflows in WEI are declarative lists of actions on modules ("Users can
specify, again using a declarative notation, workflows that perform sets of
actions on modules", paper Section 2.2).  A :class:`WorkflowSpec` can be
constructed programmatically or loaded from / saved to the YAML-like format
used by the original platform.  Argument values may reference the runtime
payload with ``"$payload.<key>"`` placeholders, which the engine resolves when
the workflow runs -- this is how the colour-picker passes the generated OT-2
protocol into its mixing workflow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping

from repro.utils import yamlite

__all__ = ["WorkflowStep", "WorkflowSpec", "resolve_payload_references"]


@dataclass(frozen=True)
class WorkflowStep:
    """One step of a workflow: a named action on a named module."""

    module: str
    action: str
    args: Dict[str, Any] = field(default_factory=dict)
    comment: str = ""

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form used by the YAML round-trip."""
        data: Dict[str, Any] = {"module": self.module, "action": self.action}
        if self.args:
            data["args"] = dict(self.args)
        if self.comment:
            data["comment"] = self.comment
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WorkflowStep":
        """Build a step from its dict form, validating required keys."""
        missing = [key for key in ("module", "action") if key not in data]
        if missing:
            raise ValueError(f"workflow step missing required keys {missing}: {dict(data)!r}")
        return cls(
            module=str(data["module"]),
            action=str(data["action"]),
            args=dict(data.get("args") or {}),
            comment=str(data.get("comment", "")),
        )


@dataclass
class WorkflowSpec:
    """A named, ordered list of workflow steps with free-form metadata."""

    name: str
    steps: List[WorkflowStep] = field(default_factory=list)
    description: str = ""
    metadata: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        if not self.name:
            raise ValueError("workflow name must be non-empty")

    @property
    def n_steps(self) -> int:
        """Number of steps in the workflow."""
        return len(self.steps)

    def modules_used(self) -> List[str]:
        """Sorted list of distinct module names referenced by the steps."""
        return sorted({step.module for step in self.steps})

    def add_step(self, module: str, action: str, comment: str = "", **args: Any) -> "WorkflowSpec":
        """Append a step and return ``self`` (fluent builder style)."""
        self.steps.append(WorkflowStep(module=module, action=action, args=args, comment=comment))
        return self

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form mirroring the WEI workflow YAML layout."""
        return {
            "name": self.name,
            "description": self.description,
            "metadata": dict(self.metadata),
            "flowdef": [step.to_dict() for step in self.steps],
        }

    def to_yaml(self) -> str:
        """Serialise to the YAML-like text format."""
        return yamlite.dumps(self.to_dict())

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WorkflowSpec":
        """Build a spec from its dict form."""
        if "name" not in data:
            raise ValueError("workflow specification requires a 'name'")
        steps_data = data.get("flowdef") or data.get("steps") or []
        steps = [WorkflowStep.from_dict(step) for step in steps_data]
        return cls(
            name=str(data["name"]),
            steps=steps,
            description=str(data.get("description", "")),
            metadata=dict(data.get("metadata") or {}),
        )

    @classmethod
    def from_yaml(cls, text: str) -> "WorkflowSpec":
        """Parse a workflow from its YAML-like text form."""
        data = yamlite.loads(text)
        if not isinstance(data, Mapping):
            raise ValueError("workflow document must be a mapping")
        return cls.from_dict(data)


def resolve_payload_references(value: Any, payload: Mapping[str, Any]) -> Any:
    """Recursively replace ``"$payload.<key>"`` strings with payload values.

    Dotted paths traverse nested mappings (``"$payload.protocol.name"``).
    Unknown keys raise :class:`KeyError` so typos in workflow files fail
    loudly instead of silently passing the placeholder string to a device.
    """
    if isinstance(value, str) and value.startswith("$payload."):
        path = value[len("$payload.") :].split(".")
        current: Any = payload
        for part in path:
            if not isinstance(current, Mapping) or part not in current:
                raise KeyError(f"payload reference {value!r} not found in workflow payload")
            current = current[part]
        return current
    if isinstance(value, Mapping):
        return {key: resolve_payload_references(item, payload) for key, item in value.items()}
    if isinstance(value, list):
        return [resolve_payload_references(item, payload) for item in value]
    return value
