"""The workflow execution engine.

"Workflow steps are translated into commands sent to computers connected to
devices, which then call driver functions specific to their attached device"
(paper Section 2.2).  In this reproduction the engine resolves each step's
module and action, substitutes payload references into the arguments, invokes
the simulated driver, and records a :class:`StepResult` with start/end times
and durations -- the same information the paper saves to a per-run file.

Transient command failures (from the fault injector) are retried up to a
configurable limit; unrecoverable failures abort the workflow, which is what
requires human intervention on the real workcell and therefore ends the
time-without-humans (TWH) clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from repro.sim.faults import CommandFailure
from repro.wei.module import ActionInvocation, ActionSubmission, Module
from repro.wei.runlog import RunLogger
from repro.wei.workcell import Workcell
from repro.wei.workflow import WorkflowSpec, WorkflowStep, resolve_payload_references

__all__ = [
    "WorkflowError",
    "StepResult",
    "WorkflowRunResult",
    "WorkflowEngine",
    "attempt_invocation",
    "attempt_submission",
]


class WorkflowError(RuntimeError):
    """Raised when a workflow cannot be completed (after retries).

    ``run_result`` carries the partial :class:`WorkflowRunResult` (including
    the successful steps executed before the failure) when the error came out
    of an engine, so callers can still account the work that *did* happen.
    """

    def __init__(self, message: str, step: Optional[WorkflowStep] = None):
        super().__init__(message)
        self.step = step
        self.run_result: Optional["WorkflowRunResult"] = None


@dataclass
class StepResult:
    """Timing and outcome of one executed workflow step."""

    step_name: str
    module: str
    action: str
    start_time: float
    end_time: float
    success: bool
    retries: int = 0
    return_value: Any = None
    error: Optional[str] = None
    commands: int = 0
    robotic_commands: int = 0

    @property
    def duration(self) -> float:
        """Elapsed seconds spent on this step (including retries)."""
        return self.end_time - self.start_time

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form (return values are reduced to their repr type)."""
        return {
            "step_name": self.step_name,
            "module": self.module,
            "action": self.action,
            "start_time": self.start_time,
            "end_time": self.end_time,
            "duration": self.duration,
            "success": self.success,
            "retries": self.retries,
            "commands": self.commands,
            "robotic_commands": self.robotic_commands,
            "error": self.error,
        }


@dataclass
class WorkflowRunResult:
    """The outcome of one workflow run (one entry in the paper's run files)."""

    workflow_name: str
    start_time: float
    end_time: float
    steps: List[StepResult] = field(default_factory=list)
    success: bool = True
    payload_keys: List[str] = field(default_factory=list)

    @property
    def duration(self) -> float:
        """Total elapsed time of the workflow run (seconds)."""
        return self.end_time - self.start_time

    @property
    def commands(self) -> int:
        """Successful device commands issued across all steps."""
        return sum(step.commands for step in self.steps)

    def step_values(self) -> Dict[str, Any]:
        """Mapping of ``"<module>.<action>"`` keys to step return values.

        Keying is deterministic for repeated actions: every occurrence of a
        ``<module>.<action>`` pair gets an explicit ``#<k>`` suffix counting
        from ``#1`` in execution order, and the bare ``<module>.<action>`` key
        always refers to the **last** occurrence.  Consumers that read the
        bare key therefore see the freshest value (previously it silently
        returned the first, stale one), while ``#1``..``#n`` expose the full
        history.
        """
        values: Dict[str, Any] = {}
        counts: Dict[str, int] = {}
        for step in self.steps:
            key = f"{step.module}.{step.action}"
            counts[key] = counts.get(key, 0) + 1
            values[f"{key}#{counts[key]}"] = step.return_value
            values[key] = step.return_value
        return values

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form stored by the run logger."""
        return {
            "workflow_name": self.workflow_name,
            "start_time": self.start_time,
            "end_time": self.end_time,
            "duration": self.duration,
            "success": self.success,
            "payload_keys": list(self.payload_keys),
            "steps": [step.to_dict() for step in self.steps],
        }


def attempt_submission(
    module: Module,
    action: str,
    args: Mapping[str, Any],
    max_retries: int,
) -> tuple:
    """Submit ``module.action``, retrying recoverable command failures.

    Command faults fire at submission (the paper observes that "most failures
    occur during reception and processing of commands"), so the whole retry
    loop happens in phase one; the returned submission's mutations are still
    pending.  Returns ``(submission, retries, last_error)`` where
    ``submission`` is ``None`` when the command failed for good
    (unrecoverable, or retries exhausted).  Shared by the sequential and
    concurrent engines so both have identical retry semantics.
    """
    retries = 0
    last_error: Optional[str] = None
    submission: Optional[ActionSubmission] = None
    while retries <= max_retries:
        try:
            submission = module.submit(action, **args)
            break
        except CommandFailure as failure:
            last_error = str(failure)
            if not failure.recoverable or retries == max_retries:
                submission = None
                break
            retries += 1
    return submission, retries, last_error


def attempt_invocation(
    module: Module,
    action: str,
    args: Mapping[str, Any],
    max_retries: int,
) -> tuple:
    """Invoke ``module.action`` synchronously, retrying recoverable failures.

    The sequential counterpart of :func:`attempt_submission`: the submission
    is completed on the spot, so state mutations land immediately.  Returns
    ``(invocation, retries, last_error)`` with ``invocation`` ``None`` when
    the command failed for good.
    """
    submission, retries, last_error = attempt_submission(module, action, args, max_retries)
    invocation: Optional[ActionInvocation] = None
    if submission is not None:
        invocation = submission.complete()
    return invocation, retries, last_error


def robotic_command_count(invocation: Optional[ActionInvocation]) -> int:
    """Successful robotic commands issued by ``invocation`` (0 when failed)."""
    if invocation is None:
        return 0
    return sum(1 for record in invocation.records if record.success and record.robotic)


class WorkflowEngine:
    """Executes :class:`WorkflowSpec` objects against a :class:`Workcell`."""

    def __init__(
        self,
        workcell: Workcell,
        *,
        max_retries: int = 2,
        run_logger: Optional[RunLogger] = None,
    ):
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self.workcell = workcell
        self.max_retries = max_retries
        self.run_logger = run_logger if run_logger is not None else RunLogger()
        self.runs_completed = 0
        self.runs_failed = 0

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run_workflow(
        self,
        spec: WorkflowSpec,
        payload: Optional[Mapping[str, Any]] = None,
    ) -> WorkflowRunResult:
        """Run every step of ``spec`` in order and return the run result.

        Raises :class:`WorkflowError` when a step exhausts its retries or an
        unrecoverable failure occurs; the partial run is still recorded in the
        run logger so failed experiments remain analysable.
        """
        payload = dict(payload or {})
        clock = self.workcell.clock
        start_time = clock.now()
        result = WorkflowRunResult(
            workflow_name=spec.name,
            start_time=start_time,
            end_time=start_time,
            payload_keys=sorted(payload),
        )

        try:
            for index, step in enumerate(spec.steps):
                step_result = self._run_step(spec, index, step, payload)
                result.steps.append(step_result)
                if not step_result.success:
                    result.success = False
                    raise WorkflowError(
                        f"workflow {spec.name!r} failed at step {index} "
                        f"({step.module}.{step.action}): {step_result.error}",
                        step=step,
                    )
        except WorkflowError as exc:
            exc.run_result = result
            raise
        finally:
            result.end_time = clock.now()
            self.run_logger.record_run(result)
            if result.success:
                self.runs_completed += 1
            else:
                self.runs_failed += 1
        return result

    def _run_step(
        self,
        spec: WorkflowSpec,
        index: int,
        step: WorkflowStep,
        payload: Mapping[str, Any],
    ) -> StepResult:
        module = self.workcell.module(step.module)
        try:
            args = resolve_payload_references(dict(step.args), payload)
        except KeyError as exc:
            raise WorkflowError(
                f"workflow {spec.name!r} step {index}: {exc}", step=step
            ) from exc

        clock = self.workcell.clock
        start = clock.now()
        invocation, retries, last_error = attempt_invocation(
            module, step.action, args, self.max_retries
        )
        end = clock.now()
        if invocation is None:
            return StepResult(
                step_name=f"{spec.name}.{index}",
                module=step.module,
                action=step.action,
                start_time=start,
                end_time=end,
                success=False,
                retries=retries,
                error=last_error or "command failed",
            )
        return StepResult(
            step_name=f"{spec.name}.{index}",
            module=step.module,
            action=step.action,
            start_time=start,
            end_time=end,
            success=True,
            retries=retries,
            return_value=invocation.return_value,
            commands=invocation.commands,
            robotic_commands=robotic_command_count(invocation),
        )
