"""Event-driven concurrent workflow execution.

The sequential :class:`~repro.wei.engine.WorkflowEngine` advances the shared
clock action-by-action, so only one workflow can be in flight at a time.  The
paper's Section 4 ablation ("integrating additional OT2s in our workflow, so
that multiple plates of colors could be mixed at once") needs many workflow
runs interleaved over shared devices.  :class:`ConcurrentWorkflowEngine`
provides that:

* every in-flight workflow (or application *program*) is a cooperative task;
* each step is an exclusive reservation of its module, recorded on a
  :class:`~repro.sim.ResourceTimeline` (one per module) and serialised by a
  FIFO queue when several tasks want the same device;
* the shared clock is driven by an :class:`~repro.sim.EventScheduler` through
  the two-phase action lifecycle: a step is *submitted* at its start event on
  a private clock (the device validates, consults the fault injector and
  samples its stochastic duration, so records are timestamped correctly) and
  the returned :class:`~repro.wei.module.ActionSubmission` is *completed* at
  a scheduled event at the sampled end time -- deck and labware mutations
  land at completion, so admission control sees plates where they physically
  are, not where an accepted command will eventually put them;
* deck *locations* are guarded: a pf400 transfer whose target slot is still
  occupied by another task's plate, or a sciclops ``get_plate`` while a plate
  sits at the exchange, is parked until a later completion frees the slot
  (the physical workcell has single-plate nests, so two concurrent plates
  must take turns at the camera stage and the exchange);
* per-step retries of recoverable command failures reuse the sequential
  engine's :func:`~repro.wei.engine.attempt_invocation`, so fault injection
  behaves identically.

Applications participate through *programs*: generators that yield requests

``("workflow", spec, payload)``
    run a workflow concurrently; the generator resumes with the
    :class:`~repro.wei.engine.WorkflowRunResult` (or has the
    :class:`~repro.wei.engine.WorkflowError` thrown into it on failure),
``("action", module_name, action, kwargs)``
    one exclusive module action; resumes with the
    :class:`~repro.wei.module.ActionInvocation`,
``("sleep", seconds)``
    non-device time (solver/computation/publication overhead); resumes after
    the simulated delay.

:meth:`ColorPickerApp.program <repro.core.app.ColorPickerApp.program>` emits
exactly this protocol, which is how a whole closed-loop experiment (not just
one workflow) runs concurrently with others on a shared workcell.

Transport-backed (real-time) execution
--------------------------------------

With a :class:`~repro.wei.drivers.registry.DriverRegistry` the engine runs in
*transport mode*: phase one still submits on the simulated clock (identical
validation, fault draws and sampled durations, so the science is bit-for-bit
the same as pure simulation), but the action is also handed to the module's
:class:`~repro.wei.drivers.base.DeviceDriver`, and the scheduled end event
**blocks on the registry's completion bridge** -- draining the queue the
driver's callback threads fill -- instead of letting the simulated clock
free-run.  Deck mutations still land on the engine thread at the completion
event; only the *pace* is set by the transport (e.g. a
:class:`~repro.wei.drivers.mock.PacedMockTransport` sleeping each duration /
speedup).  A silent transport fails the run with
:class:`~repro.wei.drivers.base.CompletionTimeout` after
``completion_timeout_s`` real seconds rather than hanging the event loop.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import asdict, dataclass
from typing import Any, Callable, Deque, Dict, Generator, List, Mapping, Optional, Sequence, Tuple

from repro.obs import tracer as obs_tracer
from repro.sim.clock import SimClock
from repro.sim.events import EventScheduler
from repro.sim.resources import ResourceTimeline
from repro.wei.drivers.base import TransportTicket
from repro.wei.drivers.registry import DriverRegistry
from repro.wei.engine import (
    StepResult,
    WorkflowError,
    WorkflowRunResult,
    attempt_submission,
    robotic_command_count,
)
from repro.wei.module import ActionSubmission, Module
from repro.wei.runlog import RunLogger
from repro.wei.workcell import Workcell
from repro.wei.workflow import WorkflowSpec, WorkflowStep, resolve_payload_references

__all__ = [
    "ConcurrencyError",
    "ConcurrentRun",
    "ProgramHandle",
    "ConcurrentWorkflowEngine",
    "TransportRetryStats",
    "RunSpanHooks",
    "chain_programs",
    "claim_jobs",
    "run_programs_on_lanes",
    "run_jobs_work_stealing",
    "run_programs_work_stealing",
]


@dataclass(frozen=True)
class TransportRetryStats:
    """Wire-level recovery counters summed over one engine's drivers.

    A typed snapshot (taken under each driver's own lock via its
    ``stats()`` view) that still reads like the dict it replaced:
    ``stats["retries"]``, ``"resyncs" in stats``, ``dict(stats)`` and
    iteration all work, so fleet views and soak logs did not have to
    change shape.
    """

    retries: int = 0
    resyncs: int = 0
    crc_errors: int = 0
    duplicates_dropped: int = 0
    completions_retransmitted: int = 0

    def to_dict(self) -> Dict[str, int]:
        """JSON-serialisable form."""
        return asdict(self)

    # -- dict-style views (compatibility with the untyped snapshot) -----
    def __getitem__(self, key: str) -> int:
        try:
            return asdict(self)[key]
        except KeyError:
            raise KeyError(key) from None

    def __iter__(self):
        return iter(asdict(self))

    def __len__(self) -> int:
        return len(asdict(self))

    def __contains__(self, key: object) -> bool:
        return key in asdict(self)

    def keys(self):
        return asdict(self).keys()

    def items(self):
        return asdict(self).items()

    def values(self):
        return asdict(self).values()

    def get(self, key: str, default: Any = None) -> Any:
        return asdict(self).get(key, default)


def chain_programs(programs: Sequence[Generator]) -> Generator:
    """Run several programs one after another as a single program.

    The combined program forwards every request of each constituent program
    in order and returns the list of their return values.  Campaign / sweep
    lanes use this to pin a sequence of experiments to one OT-2 lane while
    other lanes run concurrently.
    """
    results = []
    for program in programs:
        results.append((yield from program))
    return results


def run_programs_on_lanes(
    engine: "ConcurrentWorkflowEngine",
    programs: Sequence[Generator],
    n_lanes: int,
    lane_names: Optional[Sequence[str]] = None,
) -> List[Any]:
    """Round-robin ``programs`` over ``n_lanes`` concurrent lanes.

    Program ``i`` is pinned to lane ``i % n_lanes``; each lane chains its
    programs sequentially while lanes run concurrently.  Runs the engine to
    completion and returns the per-program results in submission order.
    """
    if n_lanes < 1:
        raise ValueError(f"n_lanes must be >= 1, got {n_lanes}")
    handles = []
    for lane in range(min(n_lanes, len(programs))):
        name = f"lane-{lane_names[lane]}" if lane_names else f"lane-{lane}"
        handles.append(engine.submit_program(chain_programs(programs[lane::n_lanes]), name=name))
    engine.run_until_complete()
    results: List[Any] = [None] * len(programs)
    for lane, handle in enumerate(handles):
        for offset, value in enumerate(handle.result):
            results[lane + offset * len(handles)] = value
    return results


def claim_jobs(
    queue: Deque[tuple],
    results: List[Any],
    run_job: Callable[[Any], Generator],
    on_claim: Optional[Callable[[int, Any], None]] = None,
    *,
    should_stop: Optional[Callable[[], bool]] = None,
    on_done: Optional[Callable[[int, Any, Any], None]] = None,
    select: Optional[Callable[[Deque[tuple]], Any]] = None,
) -> Generator:
    """One lane's dispatcher program: drain ``queue``, one claimed job at a time.

    ``queue`` holds ``(index, job)`` pairs shared (work stealing) or private
    (static pinning) to this lane; each claim is announced via ``on_claim``,
    executed by delegating to ``run_job(job)``'s program, and its return
    value stored at ``results[index]``.  ``on_done(index, job, result)``
    fires the moment a claimed job's program returns -- this is the hook the
    coordinator uses to stream run records as shards complete them -- and
    ``should_stop()`` is consulted before every claim, so a lane told to
    drain finishes its in-flight job (the claim already made) but takes
    nothing new.

    ``select(queue)``, when given, replaces the FIFO pop as the claim rule:
    it must either *remove and return* one ``(index, job)`` pair from the
    queue (any position), or return a positive number of simulated seconds
    meaning "defer" -- the dispatcher sleeps that long on the engine clock
    and re-evaluates (``should_stop`` and queue emptiness are re-checked
    first, so a deferring lane still drains and still terminates when other
    lanes empty the queue).  This is the hook behind the coordinator's
    ``assignment="lookahead"`` re-ranking policy.

    Both the single-engine work-stealing helpers and the
    :class:`~repro.wei.coordinator.MultiWorkcellCoordinator` build their
    lanes from this one dispatcher, so the claim/record protocol lives in
    exactly one place.  Returns the number of jobs this lane ran.
    """
    claimed = 0
    while queue:
        if should_stop is not None and should_stop():
            break
        if select is not None:
            choice = select(queue)
            if isinstance(choice, (int, float)):
                yield ("sleep", max(float(choice), 0.0))
                continue
            index, job = choice
        else:
            index, job = queue.popleft()
        if on_claim is not None:
            on_claim(index, job)
        results[index] = yield from run_job(job)
        claimed += 1
        if on_done is not None:
            on_done(index, job, results[index])
    return claimed


class RunSpanHooks:
    """Per-claimed-job ``"run"`` spans for a lane dispatcher program.

    ``claimed``/``done`` slot straight into :func:`claim_jobs`'s
    ``on_claim``/``on_done`` hooks.  A claim allocates the run span's id up
    front (:meth:`Tracer.new_id`) and names it as the owning program's
    current span on the engine, so every activity the job requests parents
    to it; ``done`` records the finished span
    (:meth:`Tracer.record_complete`), parented to the bound ``"campaign"``
    span when one is active.  All of it is a no-op while tracing is off.
    """

    def __init__(self, engine: "ConcurrentWorkflowEngine", program_name: str) -> None:
        self.engine = engine
        self.program_name = program_name
        self._open: Dict[int, Tuple[int, float, float]] = {}

    def claimed(self, index: int, job: Any) -> None:
        tracer = obs_tracer.active()
        if tracer is None:
            return
        span_id = tracer.new_id()
        self._open[index] = (span_id, time.monotonic(), self.engine.clock.now())
        self.engine.bind_program_span(self.program_name, span_id)

    def done(self, index: int, job: Any, result: Any) -> None:
        tracer = obs_tracer.active()
        entry = self._open.pop(index, None)
        if entry is None:
            return
        self.engine.unbind_program_span(self.program_name)
        if tracer is None:
            return
        span_id, start_wall, start_sim = entry
        tracer.record_complete(
            "run",
            span_id=span_id,
            parent_id=obs_tracer.bound("campaign"),
            start_wall=start_wall,
            start_sim=start_sim,
            end_sim=self.engine.clock.now(),
            job_index=index,
            program=self.program_name,
        )


def run_jobs_work_stealing(
    engine: "ConcurrentWorkflowEngine",
    jobs: Sequence[Any],
    lanes: Sequence[Any],
    make_program: Callable[[Any, Any], Generator],
    *,
    lane_names: Optional[Sequence[str]] = None,
) -> List[Any]:
    """Run ``jobs`` over ``lanes`` with least-finish-time (work-stealing) pulls.

    Instead of pinning job ``i`` to lane ``i % k`` up front, every lane is a
    dispatcher program that pulls the next pending job from a shared queue the
    moment it finishes its previous one.  Because the event scheduler resumes
    the dispatcher exactly at its lane's finish time, the next job always goes
    to the lane that frees *earliest in simulated time* -- on uneven job
    durations this bounds the makespan by the classic greedy list-scheduling
    guarantee instead of the arbitrarily-bad static split.

    ``make_program(job, lane)`` builds the job's program once a lane has
    claimed it, so lane-specific resources (which OT-2, which barty) bind at
    claim time.  Runs the engine to completion and returns the per-job
    results in submission order.  (Callers that need to know which lane ran
    which job use :class:`~repro.wei.coordinator.MultiWorkcellCoordinator`,
    which records every claim.)
    """
    if not lanes:
        raise ValueError("work stealing needs at least one lane")
    queue: Deque[tuple] = deque(enumerate(jobs))
    results: List[Any] = [None] * len(jobs)

    for position, lane in enumerate(lanes):
        name = str(lane_names[position]) if lane_names else str(position)
        hooks = RunSpanHooks(engine, f"lane-{name}")
        engine.submit_program(
            claim_jobs(
                queue,
                results,
                lambda job, lane=lane: make_program(job, lane),
                hooks.claimed,
                on_done=hooks.done,
            ),
            name=f"lane-{name}",
        )
    engine.run_until_complete()
    return results


def run_programs_work_stealing(
    engine: "ConcurrentWorkflowEngine",
    programs: Sequence[Generator],
    n_lanes: int,
    lane_names: Optional[Sequence[str]] = None,
) -> List[Any]:
    """Work-stealing counterpart of :func:`run_programs_on_lanes`.

    ``n_lanes`` anonymous lanes pull pre-built programs from a shared queue;
    use :func:`run_jobs_work_stealing` directly when programs must bind to
    the claiming lane's resources.
    """
    if n_lanes < 1:
        raise ValueError(f"n_lanes must be >= 1, got {n_lanes}")
    return run_jobs_work_stealing(
        engine,
        programs,
        list(range(n_lanes)),
        lambda program, _lane: program,
        lane_names=lane_names,
    )


class ConcurrencyError(RuntimeError):
    """Raised when concurrent execution can no longer make progress."""


@dataclass
class _ActivityOutcome:
    """What happened when one module activity executed (incl. retries)."""

    invocation: Optional[Any]
    retries: int
    error: Optional[str]
    start_time: float
    end_time: float

    @property
    def success(self) -> bool:
        return self.invocation is not None


@dataclass
class _Activity:
    """One pending exclusive use of a module by some task."""

    module: Module
    action: str
    args: Dict[str, Any]
    max_retries: int
    continuation: Callable[[_ActivityOutcome], None]
    label: str = ""
    #: Tracing state for the two-phase ``"action"`` span: the id is
    #: pre-allocated at the start event (so submit/deliver children can
    #: parent to it) and the span is recorded whole at the completion event.
    span_id: Optional[int] = None
    parent_span_id: Optional[int] = None
    span_start_wall: float = 0.0
    span_start_sim: float = 0.0


@dataclass
class ConcurrentRun:
    """Handle for one workflow submitted to the concurrent engine."""

    spec: WorkflowSpec
    payload: Dict[str, Any]
    result: Optional[WorkflowRunResult] = None
    error: Optional[WorkflowError] = None
    done: bool = False
    #: Name of the program this workflow was submitted for, if any.  Errors
    #: of program-owned workflows are delivered to (and handled by) the
    #: program, so ``run_until_complete`` does not re-raise them itself.
    owner: Optional[str] = None
    #: Tracing state for the ``"workflow"`` span (submit -> finish): the id
    #: is pre-allocated at submit so step activities can parent to it.
    span_id: Optional[int] = None
    span_start_wall: float = 0.0
    span_start_sim: float = 0.0

    @property
    def success(self) -> bool:
        """True once the run finished with every step successful."""
        return self.done and self.error is None


@dataclass
class _WorkflowTask:
    handle: ConcurrentRun
    index: int = 0
    on_complete: Optional[Callable[[ConcurrentRun], None]] = None


@dataclass
class ProgramHandle:
    """Handle for one application program driven by the concurrent engine."""

    name: str
    result: Any = None
    error: Optional[BaseException] = None
    done: bool = False

    @property
    def success(self) -> bool:
        """True once the program ran to completion without an error."""
        return self.done and self.error is None


class ConcurrentWorkflowEngine:
    """Interleaves many workflow runs / programs over one shared workcell.

    The engine is deterministic: given the same workcell seed and the same
    submission order, event ordering (and therefore every sampled duration
    and fault draw) is reproducible.
    """

    def __init__(
        self,
        workcell: Workcell,
        *,
        max_retries: int = 2,
        run_logger: Optional[RunLogger] = None,
        drivers: Optional[DriverRegistry] = None,
        completion_timeout_s: float = 60.0,
    ):
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if completion_timeout_s <= 0:
            raise ValueError(f"completion_timeout_s must be > 0, got {completion_timeout_s}")
        if not hasattr(workcell.clock, "advance_to"):
            raise TypeError(
                "ConcurrentWorkflowEngine needs a clock with advance_to() "
                f"(got {type(workcell.clock).__name__})"
            )
        self.workcell = workcell
        self.max_retries = max_retries
        #: Transport bindings; ``None`` completes every action in pure
        #: simulation exactly as before.
        self.drivers = drivers
        #: Real-time deadline for one transport completion (seconds).
        self.completion_timeout_s = completion_timeout_s
        #: Thread driving the event loop, recorded at each completion event
        #: so transport audits can prove completions were posted elsewhere.
        self.engine_thread_id: Optional[int] = None
        if drivers is not None:
            # Record the bindings on the modules so describe()/fleet views
            # show which actions ride a transport.
            drivers.attach(workcell)
        self.run_logger = run_logger if run_logger is not None else RunLogger()
        self.scheduler = EventScheduler(clock=workcell.clock)
        #: Busy intervals per module, for utilisation analysis and benchmarks.
        self.timelines: Dict[str, ResourceTimeline] = {}
        self.runs_completed = 0
        self.runs_failed = 0
        self._queues: Dict[str, Deque[_Activity]] = {}
        self._busy: Dict[str, bool] = {}
        self._parked: Deque[_Activity] = deque()
        #: Deck locations that in-flight actions will fill at completion.
        #: With completion-time mutations the deck alone cannot show them,
        #: so admission control counts these reservations as occupancy.
        self._incoming: Dict[str, int] = {}
        self._workflows: List[ConcurrentRun] = []
        self._programs: List[ProgramHandle] = []
        self._generators: Dict[int, Generator] = {}
        #: Program name -> current "run" span id (see :class:`RunSpanHooks`);
        #: activities requested by that program parent to it while tracing.
        self._program_spans: Dict[str, int] = {}
        self._origin = workcell.clock.now()
        # Register every module up front so utilisation() reports 0.0 for
        # idle modules (and for an engine that never ran a step) instead of
        # omitting them.
        for name in workcell.modules:
            self._module_state(name)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @property
    def clock(self):
        """The shared clock the engine drives."""
        return self.workcell.clock

    @property
    def makespan(self) -> float:
        """Simulated time elapsed since the engine was created."""
        return self.clock.now() - self._origin

    def utilisation(self) -> Dict[str, float]:
        """Busy fraction of each module over the makespan so far.

        Defined (as 0.0 per module) even for an engine that never ran a
        step: a zero makespan must not divide, and every workcell module is
        present whether or not it was ever reserved.
        """
        horizon = self.makespan
        if horizon <= 0:
            return {name: 0.0 for name in self.timelines}
        return {name: timeline.busy_time / horizon for name, timeline in self.timelines.items()}

    def overall_utilisation(self) -> float:
        """Mean busy fraction across all modules (0.0 when nothing ever ran)."""
        per_module = self.utilisation()
        if not per_module:
            return 0.0
        return sum(per_module.values()) / len(per_module)

    @property
    def transport_name(self) -> str:
        """Display name of the execution mode: ``"sim"`` or the driver names."""
        if self.drivers is None:
            return "sim"
        names = sorted({driver.name for driver in self.drivers.drivers()})
        return "+".join(names) if names else "sim"

    def transport_idle(self) -> bool:
        """True when no transport completion is still owed to this engine.

        Always True in pure simulation; drain/retirement logic uses this so
        a workcell never retires while its hardware still has an action in
        flight.
        """
        if self.drivers is None:
            return True
        return self.drivers.bridge.outstanding() == 0

    def transport_stats(self):
        """The completion bridge's counters (``None`` in pure simulation)."""
        if self.drivers is None:
            return None
        return self.drivers.bridge.stats()

    def transport_retry_stats(self) -> TransportRetryStats:
        """Wire-level recovery counters summed over this engine's drivers.

        Drivers that speak a real protocol (the
        :class:`~repro.wei.drivers.protocol.WireProtocolTransport`) expose a
        ``stats()`` snapshot with retry/resync accounting; drivers without
        one (the paced mock, pure simulation) contribute zeros.  The fields
        are always present, so fleet views can show the columns
        unconditionally: ``retries`` (command retransmissions), ``resyncs``
        (reconnect handshakes), ``crc_errors`` (frames discarded as
        corrupt), ``duplicates_dropped`` (repeat completions deduplicated on
        the wire) and ``completions_retransmitted`` (device-side re-sends).
        Returns a typed :class:`TransportRetryStats` snapshot (each driver's
        counters are read atomically under that driver's own lock by its
        ``stats()``); dict-style access still works for legacy callers.
        """
        totals = {
            "retries": 0,
            "resyncs": 0,
            "crc_errors": 0,
            "duplicates_dropped": 0,
            "completions_retransmitted": 0,
        }
        if self.drivers is None:
            return TransportRetryStats()
        for driver in self.drivers.drivers():
            stats_fn = getattr(driver, "stats", None)
            if stats_fn is None:
                continue
            snapshot = stats_fn()
            counters = snapshot.to_dict() if hasattr(snapshot, "to_dict") else dict(snapshot)
            for key in totals:
                totals[key] += int(counters.get(key, 0))
        return TransportRetryStats(**totals)

    def completion_latencies(self) -> List[float]:
        """Real posted->consumed latencies of delivered completions (seconds)."""
        if self.drivers is None:
            return []
        return self.drivers.bridge.delivery_latencies()

    def bind_program_span(self, name: str, span_id: int) -> None:
        """Name ``span_id`` as program ``name``'s current run span: every
        activity the program requests parents to it (see :class:`RunSpanHooks`)."""
        self._program_spans[name] = span_id

    def unbind_program_span(self, name: str) -> None:
        """Drop program ``name``'s run-span binding (the run finished)."""
        self._program_spans.pop(name, None)

    def submit(
        self,
        spec: WorkflowSpec,
        payload: Optional[Mapping[str, Any]] = None,
        *,
        on_complete: Optional[Callable[[ConcurrentRun], None]] = None,
    ) -> ConcurrentRun:
        """Add a workflow to the in-flight set; returns its handle.

        The first step starts immediately (at the current simulated time);
        call :meth:`run_until_complete` to drive everything to completion.
        """
        payload = dict(payload or {})
        now = self.clock.now()
        handle = ConcurrentRun(
            spec=spec,
            payload=payload,
            result=WorkflowRunResult(
                workflow_name=spec.name,
                start_time=now,
                end_time=now,
                payload_keys=sorted(payload),
            ),
        )
        tracer = obs_tracer.active()
        if tracer is not None:
            # The "workflow" span is recorded whole in _finish_workflow; its
            # id is allocated now so step activities can parent to it.
            handle.span_id = tracer.new_id()
            handle.span_start_wall = time.monotonic()
            handle.span_start_sim = now
        self._workflows.append(handle)
        self._next_step(_WorkflowTask(handle=handle, on_complete=on_complete))
        return handle

    def submit_program(self, program: Generator, *, name: str = "program") -> ProgramHandle:
        """Drive a request-yielding generator (see the module docstring)."""
        handle = ProgramHandle(name=name)
        self._programs.append(handle)
        self._generators[id(handle)] = program
        self._resume_program(handle, value=None)
        return handle

    def run_all(
        self,
        specs: Sequence[WorkflowSpec],
        payloads: Optional[Sequence[Optional[Mapping[str, Any]]]] = None,
    ) -> List[WorkflowRunResult]:
        """Submit every spec, run to completion, return results in order."""
        if payloads is None:
            payloads = [None] * len(specs)
        if len(payloads) != len(specs):
            raise ValueError("payloads must match specs one-to-one")
        handles = [self.submit(spec, payload) for spec, payload in zip(specs, payloads)]
        self.run_until_complete()
        return [handle.result for handle in handles]

    def run_until_complete(self, *, raise_errors: bool = True) -> "ConcurrentWorkflowEngine":
        """Process events until every submitted workflow / program finishes.

        Raises :class:`ConcurrencyError` when the event queue drains while
        work is still blocked (e.g. a deck location that is never freed).
        With ``raise_errors`` (the default), the first stored workflow or
        program error is re-raised; pass ``False`` to inspect handles instead.
        """
        self.engine_thread_id = threading.get_ident()
        while self.scheduler.step() is not None:
            pass
        blocked = [activity.label for activity in self._parked]
        blocked += [activity.label for queue in self._queues.values() for activity in queue]
        if blocked:
            raise ConcurrencyError(
                f"concurrent execution stalled with blocked activities: {blocked}"
            )
        unfinished = [handle.name for handle in self._programs if not handle.done]
        unfinished += [handle.spec.name for handle in self._workflows if not handle.done]
        if unfinished:
            raise ConcurrencyError(f"tasks never completed: {unfinished}")
        if raise_errors:
            for program in self._programs:
                if program.error is not None:
                    raise program.error
            for workflow in self._workflows:
                if workflow.error is not None and workflow.owner is None:
                    raise workflow.error
        return self

    # ------------------------------------------------------------------
    # Workflow task state machine
    # ------------------------------------------------------------------
    def _next_step(self, task: _WorkflowTask) -> None:
        spec = task.handle.spec
        if task.index >= len(spec.steps):
            self._finish_workflow(task, error=None)
            return
        step = spec.steps[task.index]
        module = self.workcell.module(step.module)
        try:
            args = resolve_payload_references(dict(step.args), task.handle.payload)
        except KeyError as exc:
            task.handle.result.success = False
            self._finish_workflow(
                task,
                error=WorkflowError(f"workflow {spec.name!r} step {task.index}: {exc}", step=step),
            )
            return
        self._request(
            _Activity(
                module=module,
                action=step.action,
                args=args,
                max_retries=self.max_retries,
                continuation=lambda outcome, t=task, s=step: self._step_finished(t, s, outcome),
                label=f"{spec.name}.{task.index}:{step.module}.{step.action}",
                parent_span_id=task.handle.span_id,
            )
        )

    def _step_finished(self, task: _WorkflowTask, step: WorkflowStep, outcome: _ActivityOutcome) -> None:
        spec = task.handle.spec
        invocation = outcome.invocation
        if invocation is None:
            task.handle.result.steps.append(
                StepResult(
                    step_name=f"{spec.name}.{task.index}",
                    module=step.module,
                    action=step.action,
                    start_time=outcome.start_time,
                    end_time=outcome.end_time,
                    success=False,
                    retries=outcome.retries,
                    error=outcome.error or "command failed",
                )
            )
            task.handle.result.success = False
            self._finish_workflow(
                task,
                error=WorkflowError(
                    f"workflow {spec.name!r} failed at step {task.index} "
                    f"({step.module}.{step.action}): {outcome.error}",
                    step=step,
                ),
            )
            return
        task.handle.result.steps.append(
            StepResult(
                step_name=f"{spec.name}.{task.index}",
                module=step.module,
                action=step.action,
                start_time=outcome.start_time,
                end_time=outcome.end_time,
                success=True,
                retries=outcome.retries,
                return_value=invocation.return_value,
                commands=invocation.commands,
                robotic_commands=robotic_command_count(invocation),
            )
        )
        task.index += 1
        self._next_step(task)

    def _finish_workflow(self, task: _WorkflowTask, error: Optional[WorkflowError]) -> None:
        handle = task.handle
        handle.result.end_time = self.clock.now()
        if error is not None:
            error.run_result = handle.result
        handle.error = error
        handle.done = True
        tracer = obs_tracer.active()
        if tracer is not None and handle.span_id is not None:
            parent = self._program_spans.get(handle.owner) if handle.owner else None
            tracer.record_complete(
                "workflow",
                span_id=handle.span_id,
                parent_id=parent,
                start_wall=handle.span_start_wall,
                start_sim=handle.span_start_sim,
                end_sim=handle.result.end_time,
                status="ok" if error is None else "error",
                workflow=handle.spec.name,
            )
            handle.span_id = None
        self.run_logger.record_run(handle.result)
        if error is None and handle.result.success:
            self.runs_completed += 1
        else:
            self.runs_failed += 1
        if task.on_complete is not None:
            task.on_complete(handle)

    # ------------------------------------------------------------------
    # Program driving
    # ------------------------------------------------------------------
    def _resume_program(
        self,
        handle: ProgramHandle,
        value: Any = None,
        error: Optional[BaseException] = None,
    ) -> None:
        program = self._generators[id(handle)]
        try:
            request = program.throw(error) if error is not None else program.send(value)
        except StopIteration as stop:
            handle.done = True
            handle.result = stop.value
            del self._generators[id(handle)]
            return
        except BaseException as exc:
            handle.done = True
            handle.error = exc
            del self._generators[id(handle)]
            return
        self._handle_request(handle, request)

    def _handle_request(self, handle: ProgramHandle, request: Any) -> None:
        if not isinstance(request, tuple) or not request:
            self._resume_program(
                handle, error=ValueError(f"malformed program request: {request!r}")
            )
            return
        kind = request[0]
        if kind == "workflow":
            spec = request[1]
            payload = request[2] if len(request) > 2 else None

            def workflow_done(run: ConcurrentRun) -> None:
                if run.error is not None:
                    self._resume_program(handle, error=run.error)
                else:
                    self._resume_program(handle, value=run.result)

            self.submit(spec, payload, on_complete=workflow_done).owner = handle.name
        elif kind == "action":
            if len(request) != 4:
                self._resume_program(
                    handle,
                    error=ValueError(
                        f"'action' request must be (kind, module, action, kwargs), got {request!r}"
                    ),
                )
                return
            _, module_name, action, kwargs = request
            module = self.workcell.module(module_name)

            def action_done(outcome: _ActivityOutcome) -> None:
                if outcome.invocation is None:
                    self._resume_program(
                        handle,
                        error=WorkflowError(
                            f"action {module_name}.{action} failed: {outcome.error}"
                        ),
                    )
                else:
                    self._resume_program(handle, value=outcome.invocation)

            self._request(
                _Activity(
                    module=module,
                    action=action,
                    args=dict(kwargs or {}),
                    max_retries=0,
                    continuation=action_done,
                    label=f"{handle.name}:{module_name}.{action}",
                    parent_span_id=self._program_spans.get(handle.name),
                )
            )
        elif kind == "sleep":
            seconds = float(request[1])
            self.scheduler.schedule_after(
                seconds,
                lambda: self._resume_program(handle, value=None),
                label=f"{handle.name}:sleep",
            )
        else:
            self._resume_program(
                handle, error=ValueError(f"unknown program request kind {kind!r}")
            )

    # ------------------------------------------------------------------
    # Module scheduling: queues, guards, invocation
    # ------------------------------------------------------------------
    def _module_state(self, name: str) -> None:
        if name not in self._queues:
            self._queues[name] = deque()
            self._busy[name] = False
            self.timelines[name] = ResourceTimeline(name)

    def _request(self, activity: _Activity) -> None:
        name = activity.module.name
        self._module_state(name)
        self._queues[name].append(activity)
        self._dispatch(name)

    def _dispatch(self, name: str) -> None:
        if self._busy[name]:
            return
        queue = self._queues[name]
        while queue:
            activity = queue[0]
            if self._blocked_by_location(activity):
                queue.popleft()
                self._parked.append(activity)
                continue
            queue.popleft()
            self._start(activity)
            return

    def _location_unavailable(self, location: str) -> bool:
        """A slot is unavailable while occupied *or* promised to an in-flight fill."""
        return self.workcell.deck.is_occupied(location) or self._incoming.get(location, 0) > 0

    def _fill_locations(self, activity: _Activity) -> List[str]:
        """Deck locations ``activity`` will fill when it completes."""
        module = activity.module
        if module.module_type == "pf400" and activity.action == "transfer":
            target = activity.args.get("target")
            deck = self.workcell.deck
            if isinstance(target, str) and deck.has_location(target) and target != deck.trash_location:
                return [target]
        if module.module_type == "sciclops" and activity.action == "get_plate":
            exchange = getattr(module.device, "exchange_location", None)
            if exchange is not None:
                return [exchange]
        return []

    def _blocked_by_location(self, activity: _Activity) -> bool:
        """Physical admission control for single-plate deck locations.

        A transfer cannot start while another task's plate occupies the
        target nest -- or is on its way there from an in-flight action -- and
        the sciclops cannot stage a plate onto an occupied (or promised)
        exchange.  The locations an activity would fill come from
        :meth:`_fill_locations`, the same source the in-flight reservation
        counter uses, so admission and reservation can never diverge.
        Blocked activities are parked (without holding their module) and
        re-admitted when a completion frees the slot.
        """
        module = activity.module
        if any(self._location_unavailable(location) for location in self._fill_locations(activity)):
            return True
        if module.module_type == "ot2" and activity.action == "run_protocol":
            deck_location = getattr(module.device, "deck_location", None)
            if deck_location is not None and not self.workcell.deck.is_occupied(deck_location):
                return True
        return False

    def _start(self, activity: _Activity) -> None:
        """Phase one: submit the action at its start event.

        The device runs on a private clock seeded at the current time so its
        duration sampling and record timestamps are correct while the shared
        clock stays put.  Only the *submission* happens here -- validation,
        fault draws and retries -- and the deck/labware mutations stay
        pending until the completion event fires at the sampled end time.

        In transport mode the action is also dispatched to the module's
        driver, which will post its completion out-of-band; the scheduled
        end event then waits for that ticket before applying the mutations.
        The simulated timestamps (and therefore every downstream sample and
        score) are identical either way -- the transport only decides how
        much *real* time passes before the completion is consumed.
        """
        name = activity.module.name
        self._busy[name] = True
        start = self.clock.now()
        tracer = obs_tracer.active()
        if tracer is not None:
            # The two-phase "action" span: its id exists from here so the
            # submit phase, the driver threads (via the ticket binding) and
            # the bridge delivery can all parent to it; the span itself is
            # recorded whole at the completion event (_record_action_span).
            activity.span_id = tracer.new_id()
            activity.span_start_wall = time.monotonic()
            activity.span_start_sim = start
        device = activity.module.device
        local = SimClock(start=start)
        saved_clock = device.clock
        with obs_tracer.span(
            "action.submit",
            parent_id=activity.span_id,
            sim_time=start,
            module=name,
            action=activity.action,
        ) as submit_span:
            device.clock = local
            try:
                submission, retries, last_error = attempt_submission(
                    activity.module, activity.action, activity.args, activity.max_retries
                )
            finally:
                device.clock = saved_clock
            end = local.now()
            self.timelines[name].reserve(start, end - start)
            if submission is not None:
                for location in self._fill_locations(activity):
                    self._incoming[location] = self._incoming.get(location, 0) + 1
            ticket: Optional[TransportTicket] = None
            driver = self.drivers.driver_for(activity.module) if self.drivers is not None else None
            if driver is not None:
                # Failed submissions are dispatched too: the device spent real
                # time rejecting the command, and the transport reports that
                # outcome just like a success.
                ticket = driver.submit(
                    activity.action,
                    module=name,
                    duration_s=end - start,
                    sim_start=start,
                    sim_end=end,
                )
                self.drivers.bridge.register(ticket)
                obs_tracer.bind(ticket.ticket_id, activity.span_id)
                submit_span.set(ticket_id=ticket.ticket_id)
            submit_span.set_sim(end=end)
        self.scheduler.schedule_at(
            end,
            lambda: self._complete(activity, submission, retries, last_error, start, end, ticket),
            label=activity.label,
        )

    def _complete(
        self,
        activity: _Activity,
        submission: Optional[ActionSubmission],
        retries: int,
        last_error: Optional[str],
        start: float,
        end: float,
        ticket: Optional[TransportTicket] = None,
    ) -> None:
        """Phase two: the action's end event.

        In transport mode this first **blocks on the completion bridge**
        until the driver's callback thread has posted the ticket's
        completion (raising
        :class:`~repro.wei.drivers.base.CompletionTimeout` if the transport
        goes silent).  State mutations are applied *now*, on the engine
        thread -- before parked activities are re-examined, so a slot freed
        by this completion admits its waiters -- and only then does the
        owning task continue.
        """
        self.engine_thread_id = threading.get_ident()
        reserved = submission is not None
        if ticket is not None:
            try:
                completion = self.drivers.bridge.wait_for(ticket, self.completion_timeout_s)
            except Exception:
                self._record_action_span(activity, ticket, end, status="error")
                raise
            if completion.error is not None and submission is not None:
                # The transport reported a delivery failure the simulated
                # device did not: surface it like any unrecoverable command
                # failure instead of mutating state on bad information.
                submission = None
                last_error = f"transport error: {completion.error}"
        self._busy[activity.module.name] = False
        if reserved:
            # Release the fill reservations just before the mutation lands:
            # from here the deck itself shows the occupancy.
            for location in self._fill_locations(activity):
                self._incoming[location] -= 1
        invocation = submission.complete() if submission is not None else None
        outcome = _ActivityOutcome(
            invocation=invocation,
            retries=retries,
            error=last_error,
            start_time=start,
            end_time=end,
        )
        self._record_action_span(
            activity, ticket, end, status="ok" if invocation is not None else "error"
        )
        self._unpark()
        activity.continuation(outcome)
        for name in sorted(self._queues):
            self._dispatch(name)

    def _record_action_span(
        self,
        activity: _Activity,
        ticket: Optional[TransportTicket],
        end_sim: float,
        *,
        status: str,
    ) -> None:
        """Close the two-phase "action" span allocated in :meth:`_start`."""
        if activity.span_id is None:
            return
        if ticket is not None:
            obs_tracer.unbind(ticket.ticket_id)
        tracer = obs_tracer.active()
        if tracer is None:
            return
        tracer.record_complete(
            "action",
            span_id=activity.span_id,
            parent_id=activity.parent_span_id,
            start_wall=activity.span_start_wall,
            start_sim=activity.span_start_sim,
            end_sim=end_sim,
            status=status,
            module=activity.module.name,
            action=activity.action,
            label=activity.label,
        )
        activity.span_id = None

    def _unpark(self) -> None:
        if not self._parked:
            return
        still_blocked: Deque[_Activity] = deque()
        for activity in self._parked:
            if self._blocked_by_location(activity):
                still_blocked.append(activity)
            else:
                self._module_state(activity.module.name)
                self._queues[activity.module.name].append(activity)
        self._parked = still_blocked
