"""Resource-timeline planning for concurrent device use.

The paper's Section 4 proposes "integrating additional OT2s in our workflow,
so that multiple plates of colors could be mixed at once.  This would lead to
an increase in CCWH, but potentially a lower TWH for the same experimental
results."  This module provides the planning layer for that ablation: given a
workcell with ``k`` OT-2 modules and a list of mixing batches, it schedules
each batch's transfer → mix → transfer → image chain onto the shared pf400 /
camera and the per-batch OT-2 using :class:`repro.sim.ResourceTimeline`, and
reports the makespan and per-device utilisation.

The planner is deliberately simple (greedy, earliest-available OT-2 first);
its purpose is to quantify the TWH / CCWH trade-off, not to be an optimal
scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.sim.durations import DurationTable, paper_calibrated_durations
from repro.sim.resources import ResourceTimeline

__all__ = ["ScheduledBatch", "ParallelMixPlan", "plan_parallel_mixes"]


@dataclass
class ScheduledBatch:
    """Timing of one batch's pipeline stages in the plan."""

    batch_index: int
    ot2_name: str
    transfer_in: tuple
    mix: tuple
    transfer_out: tuple
    imaging: tuple

    @property
    def finish_time(self) -> float:
        """When this batch's image is available to the solver."""
        return self.imaging[1]


@dataclass
class ParallelMixPlan:
    """The outcome of planning a set of batches onto a workcell."""

    n_ot2: int
    batches: List[ScheduledBatch] = field(default_factory=list)
    timelines: Dict[str, ResourceTimeline] = field(default_factory=dict)

    @property
    def makespan(self) -> float:
        """Completion time of the last batch (simulated seconds)."""
        return max((batch.finish_time for batch in self.batches), default=0.0)

    @property
    def total_commands(self) -> int:
        """Successful device commands implied by the plan.

        Matches the engine's per-step command count for one executed
        ``cp_wf_mix_colors`` iteration: two pf400 transfers, one OT-2
        protocol and one camera image per batch (the camera command is not
        *robotic*, see :attr:`robotic_commands`).
        """
        return 4 * len(self.batches)

    @property
    def robotic_commands(self) -> int:
        """Robotic commands implied by the plan (2 transfers + 1 mix per batch).

        This is the CCWH-relevant count: camera imaging is excluded, exactly
        as the engine's ``StepResult.robotic_commands`` excludes it.
        """
        return 3 * len(self.batches)

    def utilisation(self) -> Dict[str, float]:
        """Busy fraction of each device over the makespan."""
        horizon = self.makespan
        if horizon <= 0:
            return {name: 0.0 for name in self.timelines}
        return {name: timeline.utilisation(horizon) for name, timeline in self.timelines.items()}


def plan_parallel_mixes(
    batch_sizes: Sequence[int],
    *,
    n_ot2: int = 1,
    durations: Optional[DurationTable] = None,
) -> ParallelMixPlan:
    """Plan the execution of ``batch_sizes`` mixing batches on ``n_ot2`` OT-2s.

    Each batch runs the colour-picker iteration pipeline:
    pf400 transfer to the OT-2, OT-2 protocol (duration scales with the batch
    size), pf400 transfer to the camera, camera imaging.  The pf400 and camera
    are shared across all OT-2s; each OT-2 has its own deck.

    Durations use the *mean* of the calibrated models so plans are
    deterministic; the full application (with sampled durations) is used for
    the headline experiments, while this planner supports the what-if ablation.
    """
    if n_ot2 < 1:
        raise ValueError(f"n_ot2 must be >= 1, got {n_ot2}")
    if any(size < 1 for size in batch_sizes):
        raise ValueError("all batch sizes must be >= 1")
    durations = durations if durations is not None else paper_calibrated_durations()

    pf400 = ResourceTimeline("pf400")
    camera = ResourceTimeline("camera")
    ot2s = [ResourceTimeline(f"ot2_{index}" if index else "ot2") for index in range(n_ot2)]

    transfer_time = durations.mean("pf400", "transfer")
    imaging_time = durations.mean("camera", "take_picture")

    plan = ParallelMixPlan(n_ot2=n_ot2)
    plan.timelines = {"pf400": pf400, "camera": camera}
    for timeline in ot2s:
        plan.timelines[timeline.name] = timeline

    # Assign batches to OT-2s by least accumulated mix work (longest-processing
    # -time-first balancing is unnecessary here; the batches of one sweep all
    # have the same size).
    assigned_work = [0.0] * n_ot2
    jobs = []
    deck_free = [0.0] * n_ot2  # a new plate cannot load until the previous one left
    for index, batch_size in enumerate(batch_sizes):
        ot2_index = min(range(n_ot2), key=lambda i: assigned_work[i])
        mix_time = durations.mean("ot2", "run_protocol", units=batch_size)
        assigned_work[ot2_index] += mix_time
        jobs.append(
            {
                "index": index,
                "ot2": ot2_index,
                "mix_time": mix_time,
                "stage": 0,
                "ready": 0.0,
                "intervals": {},
            }
        )

    # Greedy event-ordered simulation: repeatedly start the stage that can
    # begin earliest.  Stages: 0 transfer-in (pf400), 1 mix (ot2),
    # 2 transfer-out (pf400), 3 imaging (camera).  An OT-2 deck holds one
    # plate, so a transfer-in may only be *committed* once no other batch is
    # loaded on that deck (stages 0-2); without this eligibility check the
    # greedy pick could reserve a transfer onto a still-occupied deck.
    def stage_resource(job):
        return {0: pf400, 1: ot2s[job["ot2"]], 2: pf400, 3: camera}[job["stage"]]

    def stage_duration(job):
        return {0: transfer_time, 1: job["mix_time"], 2: transfer_time, 3: imaging_time}[job["stage"]]

    deck_busy: List[Optional[int]] = [None] * n_ot2  # index of the loaded job
    active = [job for job in jobs]
    while active:
        def eligible(job):
            return job["stage"] > 0 or deck_busy[job["ot2"]] is None

        def earliest_start(job):
            ready = job["ready"] if job["stage"] > 0 else max(job["ready"], deck_free[job["ot2"]])
            return max(ready, stage_resource(job).available_at)

        job = min(
            (j for j in active if eligible(j)), key=lambda j: (earliest_start(j), j["index"])
        )
        start_at = earliest_start(job)
        start, end = stage_resource(job).reserve(start_at, stage_duration(job))
        stage = job["stage"]
        job["intervals"][stage] = (start, end)
        job["ready"] = end
        if stage == 0:
            deck_busy[job["ot2"]] = job["index"]
        if stage == 2:
            deck_busy[job["ot2"]] = None
            deck_free[job["ot2"]] = end
        job["stage"] += 1
        if job["stage"] > 3:
            active.remove(job)

    for job in sorted(jobs, key=lambda j: j["index"]):
        plan.batches.append(
            ScheduledBatch(
                batch_index=job["index"],
                ot2_name=ot2s[job["ot2"]].name,
                transfer_in=job["intervals"][0],
                mix=job["intervals"][1],
                transfer_out=job["intervals"][2],
                imaging=job["intervals"][3],
            )
        )
    return plan
