"""The WEI module abstraction.

"Each module is represented by a software abstraction that exposes a single
device and, via interface methods, the actions that the device can perform"
(paper Section 2.2).  :class:`Module` wraps a simulated device, exposes a
registry of named actions (bound methods), and records which
:class:`~repro.hardware.base.ActionRecord` entries each invocation produced so
the engine can attribute time and command counts to workflow steps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.hardware.base import ActionRecord, SimulatedDevice

__all__ = ["ModuleActionError", "ActionInvocation", "Module"]


class ModuleActionError(RuntimeError):
    """Raised when an unknown action is requested or an action is misused."""


@dataclass
class ActionInvocation:
    """The outcome of invoking one module action."""

    module: str
    action: str
    return_value: Any = None
    records: List[ActionRecord] = field(default_factory=list)

    @property
    def duration(self) -> float:
        """Total device time attributed to this invocation (seconds)."""
        return sum(record.duration for record in self.records)

    @property
    def commands(self) -> int:
        """Number of successful device commands issued by this invocation."""
        return sum(1 for record in self.records if record.success)


class Module:
    """A named module exposing a device's actions.

    Parameters
    ----------
    name:
        The module's name within the workcell (e.g. ``"ot2"``, ``"pf400"``).
    device:
        The simulated device instance this module fronts.
    actions:
        Mapping of action name to callable.  When omitted, every public
        method of the device that does not start with an underscore and is
        not part of the bookkeeping API is exposed.
    """

    _EXCLUDED = {
        "describe",
        "reset_log",
        "reservoir_levels",
        "reservoirs_low",
        "can_run",
        "bulk_levels",
    }

    def __init__(
        self,
        name: str,
        device: SimulatedDevice,
        actions: Optional[Dict[str, Callable[..., Any]]] = None,
    ):
        self.name = name
        self.device = device
        if actions is None:
            actions = {
                attr: getattr(device, attr)
                for attr in dir(device)
                if not attr.startswith("_")
                and attr not in self._EXCLUDED
                and callable(getattr(device, attr))
                and getattr(type(device), attr, None) is not None
                and not isinstance(getattr(type(device), attr, None), property)
                and getattr(device, attr).__func__.__qualname__.split(".")[0]
                not in ("SimulatedDevice",)
            }
        self.actions: Dict[str, Callable[..., Any]] = dict(actions)

    @property
    def module_type(self) -> str:
        """The underlying device's module type (used for duration lookup)."""
        return self.device.module_type

    def has_action(self, action: str) -> bool:
        """True if ``action`` is exposed by this module."""
        return action in self.actions

    def action_names(self) -> List[str]:
        """Sorted list of exposed action names."""
        return sorted(self.actions)

    def invoke(self, action: str, **kwargs: Any) -> ActionInvocation:
        """Invoke ``action`` with keyword arguments and return its outcome.

        The device's action log is inspected before and after the call so the
        invocation can report exactly which commands it caused.
        """
        if action not in self.actions:
            raise ModuleActionError(
                f"module {self.name!r} has no action {action!r}; available: {self.action_names()}"
            )
        log_start = len(self.device.action_log)
        try:
            value = self.actions[action](**kwargs)
        finally:
            records = self.device.action_log[log_start:]
        return ActionInvocation(
            module=self.name,
            action=action,
            return_value=value,
            records=list(records),
        )

    def describe(self) -> Dict[str, Any]:
        """Static description used in workcell specifications and run records."""
        return {
            "name": self.name,
            "type": self.module_type,
            "actions": self.action_names(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Module(name={self.name!r}, type={self.module_type!r})"
