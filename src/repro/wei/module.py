"""The WEI module abstraction.

"Each module is represented by a software abstraction that exposes a single
device and, via interface methods, the actions that the device can perform"
(paper Section 2.2).  :class:`Module` wraps a simulated device, exposes a
registry of named actions (bound methods), and records which
:class:`~repro.hardware.base.ActionRecord` entries each invocation produced so
the engine can attribute time and command counts to workflow steps.

Actions follow the two-phase lifecycle of the hardware layer:
:meth:`Module.submit` accepts the command (validating, sampling its duration
and logging its records) and returns an :class:`ActionSubmission` whose
:meth:`~ActionSubmission.complete` applies the state mutations and produces
the :class:`ActionInvocation`.  :meth:`Module.invoke` is submit-then-complete
in one call, preserving the synchronous API for sequential execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.hardware.base import ActionHandle, ActionRecord, SimulatedDevice

__all__ = ["ModuleActionError", "ActionInvocation", "ActionSubmission", "Module"]


class ModuleActionError(RuntimeError):
    """Raised when an unknown action is requested or an action is misused."""


@dataclass
class ActionInvocation:
    """The outcome of invoking one module action."""

    module: str
    action: str
    return_value: Any = None
    records: List[ActionRecord] = field(default_factory=list)

    @property
    def duration(self) -> float:
        """Total device time attributed to this invocation (seconds)."""
        return sum(record.duration for record in self.records)

    @property
    def commands(self) -> int:
        """Number of successful device commands issued by this invocation."""
        return sum(1 for record in self.records if record.success)


@dataclass
class ActionSubmission:
    """A module action accepted for execution but not yet completed.

    ``records`` are the device commands logged by this (successful)
    submission; failed earlier attempts were separate submissions and stay in
    the device's ``action_log`` only.  The action's state mutations are
    deferred until :meth:`complete`.
    """

    module: str
    action: str
    handle: ActionHandle
    records: List[ActionRecord] = field(default_factory=list)

    @property
    def start_time(self) -> float:
        """When the command was accepted."""
        return self.handle.start_time

    @property
    def end_time(self) -> float:
        """When the action will (or did) finish."""
        return self.handle.end_time

    @property
    def completed(self) -> bool:
        """True once :meth:`complete` has applied the action's mutations."""
        return self.handle.completed

    def complete(self) -> ActionInvocation:
        """Apply the action's state mutations and return the invocation outcome."""
        value = self.handle.complete()
        return ActionInvocation(
            module=self.module,
            action=self.action,
            return_value=value,
            records=list(self.records),
        )


class Module:
    """A named module exposing a device's actions.

    Parameters
    ----------
    name:
        The module's name within the workcell (e.g. ``"ot2"``, ``"pf400"``).
    device:
        The simulated device instance this module fronts.
    actions:
        Mapping of action name to callable.  When omitted, every public
        method of the device that does not start with an underscore and is
        not part of the bookkeeping API is exposed.
    """

    _EXCLUDED = {
        "describe",
        "reset_log",
        "reservoir_levels",
        "reservoirs_low",
        "can_run",
        "bulk_levels",
    }

    def __init__(
        self,
        name: str,
        device: SimulatedDevice,
        actions: Optional[Dict[str, Callable[..., Any]]] = None,
    ):
        self.name = name
        self.device = device
        #: The transport driver backing this module, if any (bound by a
        #: :class:`~repro.wei.drivers.registry.DriverRegistry`); ``None``
        #: means actions complete in pure simulation.
        self.driver: Optional[Any] = None
        if actions is None:
            actions = {
                attr: getattr(device, attr)
                for attr in dir(device)
                if not attr.startswith("_")
                # submit_<action> methods are the two-phase halves of the
                # plain actions, not actions of their own.
                and not attr.startswith("submit_")
                and attr not in self._EXCLUDED
                and callable(getattr(device, attr))
                and getattr(type(device), attr, None) is not None
                and not isinstance(getattr(type(device), attr, None), property)
                and getattr(device, attr).__func__.__qualname__.split(".")[0]
                not in ("SimulatedDevice",)
            }
        self.actions: Dict[str, Callable[..., Any]] = dict(actions)

    @property
    def module_type(self) -> str:
        """The underlying device's module type (used for duration lookup)."""
        return self.device.module_type

    def has_action(self, action: str) -> bool:
        """True if ``action`` is exposed by this module."""
        return action in self.actions

    def action_names(self) -> List[str]:
        """Sorted list of exposed action names."""
        return sorted(self.actions)

    def two_phase_actions(self) -> List[str]:
        """Actions backed by the device's two-phase ``submit_<action>`` path.

        Only these can be completed out-of-band by a transport driver;
        custom callables registered under an action name execute
        synchronously at submission and complete as a no-op.
        """
        return [action for action in self.action_names() if self._two_phase_impl(action) is not None]

    def bind_driver(self, driver: Optional[Any]) -> None:
        """Record the transport driver backing this module (``None`` unbinds)."""
        self.driver = driver

    @property
    def driver_name(self) -> Optional[str]:
        """Name of the bound transport driver (``None`` in pure simulation)."""
        return getattr(self.driver, "name", None) if self.driver is not None else None

    def _two_phase_impl(self, action: str) -> Optional[Callable[..., ActionHandle]]:
        """The device's ``submit_<action>`` when it backs this module action.

        Only used when the registered callable *is* the device's own method of
        the same name; a custom callable registered under that name must not
        be silently swapped for the device implementation.
        """
        registered = self.actions[action]
        if getattr(registered, "__self__", None) is not self.device:
            return None
        if getattr(registered, "__name__", None) != action:
            return None
        if not self.device.has_submit(action):
            return None
        return getattr(self.device, f"submit_{action}")

    def submit(self, action: str, **kwargs: Any) -> ActionSubmission:
        """Submit ``action`` (phase one) and return its :class:`ActionSubmission`.

        The device's action log is inspected before and after the submission so
        the eventual invocation can report exactly which commands it caused.
        Actions without a two-phase device implementation (custom callables)
        execute synchronously at submission and complete as a no-op.
        """
        if action not in self.actions:
            raise ModuleActionError(
                f"module {self.name!r} has no action {action!r}; available: {self.action_names()}"
            )
        log_start = len(self.device.action_log)
        impl = self._two_phase_impl(action)
        if impl is not None:
            handle = impl(**kwargs)
            records = list(self.device.action_log[log_start:])
        else:
            value = self.actions[action](**kwargs)
            records = list(self.device.action_log[log_start:])
            if records:
                start = min(record.start_time for record in records)
                end = max(record.end_time for record in records)
            else:
                start = end = self.device.clock.now()
            handle = ActionHandle(
                module=self.name,
                action=action,
                start_time=start,
                end_time=end,
                completed=True,
                return_value=value,
            )
        return ActionSubmission(
            module=self.name,
            action=action,
            handle=handle,
            records=records,
        )

    def invoke(self, action: str, **kwargs: Any) -> ActionInvocation:
        """Invoke ``action`` with keyword arguments and return its outcome.

        Submit-then-complete in one call: the synchronous path used by the
        sequential engine and direct callers.
        """
        return self.submit(action, **kwargs).complete()

    def describe(self) -> Dict[str, Any]:
        """Static description used in workcell specifications and run records.

        ``two_phase`` lists the actions a transport driver can complete
        out-of-band (the device implements ``submit_<action>``), and
        ``driver`` names the bound transport (``None`` = pure simulation) --
        the fields ``fleet-status`` and the docs use to show transport
        bindings.
        """
        return {
            "name": self.name,
            "type": self.module_type,
            "actions": self.action_names(),
            "two_phase": self.two_phase_actions(),
            "driver": self.driver_name,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Module(name={self.name!r}, type={self.module_type!r})"
