"""Multi-workcell campaign coordination.

One :class:`~repro.wei.concurrent.ConcurrentWorkflowEngine` interleaves many
programs over *one* shared workcell; production scale needs campaigns that
span several physically independent workcells (the ROADMAP's "multi-workcell
sharding" item).  :class:`MultiWorkcellCoordinator` drives ``k`` engines --
each with its own deck, devices, clock and RNG streams -- as one fleet:

* **least-finish-time / work-stealing assignment**: every lane of every
  workcell is a dispatcher that pulls the next pending job from one shared
  queue the moment it frees.  The coordinator merges the engines' event
  queues, always stepping the engine whose next event is earliest in
  simulated time, so a lane that frees at t=500s on workcell B claims the
  next job before a lane freeing at t=700s on workcell A -- the dynamic
  replacement for pinning job ``i`` to shard ``i % k``;
* **merged observability**: the fleet's :class:`ActionRecord` streams are
  merged into one time-sorted view tagged with the originating workcell, and
  makespan / utilisation aggregate across shards;
* **determinism**: engines only interact through the shared job queue, whose
  pops are ordered by the merged event loop; given the same seeds and job
  list the assignment and every sampled duration are reproducible.

Each engine still runs the two-phase action lifecycle internally, so deck
mutations land at action completion on every shard.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, Generator, List, Optional, Sequence, Tuple

from repro.wei.concurrent import ConcurrentWorkflowEngine, claim_jobs
from repro.wei.workcell import Workcell, build_color_picker_workcell

__all__ = ["ShardAssignment", "MultiWorkcellCoordinator"]

#: Assignment policies understood by :meth:`MultiWorkcellCoordinator.run_jobs`.
ASSIGNMENT_POLICIES = ("work-stealing", "static")


@dataclass(frozen=True)
class ShardAssignment:
    """Where one job of a coordinated campaign executed."""

    job_index: int
    shard: int
    workcell: str
    lane: Any


class MultiWorkcellCoordinator:
    """Shards jobs across independent workcell engines.

    Parameters
    ----------
    engines:
        One :class:`ConcurrentWorkflowEngine` per workcell shard.  The
        engines must be distinct objects; their clocks are independent
        (shard simulations overlap in simulated time, as independent robots
        do in the real world).
    """

    def __init__(self, engines: Sequence[ConcurrentWorkflowEngine]):
        if not engines:
            raise ValueError("coordinator needs at least one workcell engine")
        if len({id(engine) for engine in engines}) != len(engines):
            raise ValueError("coordinator engines must be distinct")
        self.engines: List[ConcurrentWorkflowEngine] = list(engines)
        self.assignments: List[Optional[ShardAssignment]] = []

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def build_color_picker_fleet(
        cls,
        n_workcells: int,
        *,
        seed: Optional[int] = None,
        n_ot2: int = 1,
        **workcell_kwargs: Any,
    ) -> "MultiWorkcellCoordinator":
        """Build ``n_workcells`` colour-picker workcells and their engines.

        Each shard gets a distinct deterministic seed derived from ``seed``
        so device RNG streams differ between shards but the whole fleet is
        reproducible.
        """
        if n_workcells < 1:
            raise ValueError(f"n_workcells must be >= 1, got {n_workcells}")
        engines = []
        for shard in range(n_workcells):
            shard_seed = None if seed is None else seed + 100_003 * shard
            workcell = build_color_picker_workcell(
                name=f"workcell-{shard}", seed=shard_seed, n_ot2=n_ot2, **workcell_kwargs
            )
            engines.append(ConcurrentWorkflowEngine(workcell))
        return cls(engines)

    # ------------------------------------------------------------------
    # Fleet views
    # ------------------------------------------------------------------
    @property
    def n_workcells(self) -> int:
        """Number of workcell shards in the fleet."""
        return len(self.engines)

    @property
    def workcells(self) -> List[Workcell]:
        """The shards' workcells, in shard order."""
        return [engine.workcell for engine in self.engines]

    @property
    def makespan(self) -> float:
        """Fleet makespan: the slowest shard bounds the campaign."""
        return max(engine.makespan for engine in self.engines)

    def shard_makespans(self) -> List[float]:
        """Per-shard makespans, in shard order."""
        return [engine.makespan for engine in self.engines]

    def utilisation(self) -> Dict[str, float]:
        """Busy fractions keyed ``"<module>@<workcell>"`` across the fleet."""
        merged: Dict[str, float] = {}
        for engine in self.engines:
            for name, value in engine.utilisation().items():
                merged[f"{name}@{engine.workcell.name}"] = value
        return merged

    def overall_utilisation(self) -> float:
        """Mean busy fraction across every module of every shard."""
        merged = self.utilisation()
        if not merged:
            return 0.0
        return sum(merged.values()) / len(merged)

    def merged_action_log(self) -> List[Dict[str, Any]]:
        """Every device command of every shard, time-sorted and shard-tagged.

        The single-stream view a fleet portal ingests: each entry is the
        record's dict form plus the originating ``workcell``, ordered by
        start time (ties broken by shard order so the merge is stable).
        """
        entries: List[Tuple[float, int, Dict[str, Any]]] = []
        for shard, engine in enumerate(self.engines):
            for record in engine.workcell.action_records():
                entry = record.to_dict()
                entry["workcell"] = engine.workcell.name
                entries.append((record.start_time, shard, entry))
        entries.sort(key=lambda item: (item[0], item[1]))
        return [entry for _, _, entry in entries]

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run_jobs(
        self,
        jobs: Sequence[Any],
        make_program: Callable[[Any, int, Any], Generator],
        *,
        lanes: Optional[Sequence[Sequence[Any]]] = None,
        assignment: str = "work-stealing",
    ) -> List[Any]:
        """Execute ``jobs`` across the fleet and return results in job order.

        ``make_program(job, shard, lane)`` builds a job's program once a lane
        has claimed it, binding shard-local resources at claim time.
        ``lanes`` gives each shard's lane keys (default: one anonymous lane
        per shard).  With ``assignment="work-stealing"`` (the default) all
        lanes pull from one shared queue in least-finish-time order; with
        ``"static"`` job ``i`` is pinned to lane ``i % L`` of the flattened
        lane list -- kept for benchmarking against the dynamic policy.

        Raises :class:`ConcurrencyError` if any shard stalls, and re-raises
        the first stored program error, exactly like
        :meth:`ConcurrentWorkflowEngine.run_until_complete`.
        """
        if assignment not in ASSIGNMENT_POLICIES:
            raise ValueError(
                f"unknown assignment policy {assignment!r}; expected one of {ASSIGNMENT_POLICIES}"
            )
        if lanes is None:
            lanes = [[None] for _ in self.engines]
        if len(lanes) != len(self.engines):
            raise ValueError("lanes must provide one lane list per workcell engine")
        flat_lanes: List[Tuple[int, Any]] = [
            (shard, lane) for shard, shard_lanes in enumerate(lanes) for lane in shard_lanes
        ]
        if not flat_lanes:
            raise ValueError("at least one lane is required")

        results: List[Any] = [None] * len(jobs)
        self.assignments = [None] * len(jobs)
        if assignment == "static":
            queues: List[Deque[tuple]] = [deque() for _ in flat_lanes]
            for index, job in enumerate(jobs):
                queues[index % len(flat_lanes)].append((index, job))
        else:
            shared: Deque[tuple] = deque(enumerate(jobs))
            queues = [shared] * len(flat_lanes)

        for position, (shard, lane) in enumerate(flat_lanes):

            def on_claim(index: int, _job: Any, shard: int = shard, lane: Any = lane) -> None:
                self.assignments[index] = ShardAssignment(
                    job_index=index,
                    shard=shard,
                    workcell=self.engines[shard].workcell.name,
                    lane=lane,
                )

            self.engines[shard].submit_program(
                claim_jobs(
                    queues[position],
                    results,
                    lambda job, shard=shard, lane=lane: make_program(job, shard, lane),
                    on_claim,
                ),
                name=f"shard{shard}-lane-{lane if lane is not None else position}",
            )
        self._run_merged()
        for engine in self.engines:
            # The merged loop drained every queue; this validates each shard
            # finished cleanly and re-raises any stored error.
            engine.run_until_complete()
        return results

    def _run_merged(self) -> None:
        """Drive all shards, always stepping the earliest pending event.

        Shards share nothing but the job queue, so this ordering only matters
        when two lanes race for the queue -- and then the lane that frees
        earliest in simulated time must claim the next job for the
        least-finish-time guarantee to hold.  Ties go to the lower shard, so
        execution is deterministic.
        """
        while True:
            best_engine = None
            best_time = None
            for engine in self.engines:
                pending = engine.scheduler.next_time()
                if pending is None:
                    continue
                if best_time is None or pending < best_time:
                    best_time = pending
                    best_engine = engine
            if best_engine is None:
                return
            best_engine.scheduler.step()
