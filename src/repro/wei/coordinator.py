"""Elastic multi-workcell campaign coordination.

One :class:`~repro.wei.concurrent.ConcurrentWorkflowEngine` interleaves many
programs over *one* shared workcell; production scale needs campaigns that
span several physically independent workcells and keep running while robots
join and leave the fleet.  :class:`MultiWorkcellCoordinator` drives ``k``
engines -- each with its own deck, devices, clock and RNG streams -- as one
fleet:

* **least-finish-time / work-stealing assignment**: every lane of every
  workcell is a dispatcher that pulls the next pending job from one shared
  queue the moment it frees.  The coordinator merges the engines' event
  queues, always stepping the engine whose next event is earliest in
  simulated time, so a lane that frees at t=500s on workcell B claims the
  next job before a lane freeing at t=700s on workcell A -- the dynamic
  replacement for pinning job ``i`` to shard ``i % k``;
* **fleet elasticity**: :meth:`~MultiWorkcellCoordinator.attach_workcell`
  and :meth:`~MultiWorkcellCoordinator.drain_workcell` are safe mid-campaign.
  An attached shard joins the merged event loop and starts pulling from the
  shared queue immediately; a draining shard finishes its in-flight runs
  (two-phase completions included), stops claiming new jobs and reports its
  retirement in the merged log;
* **streaming observability**: run completions are pushed to registered
  listeners (:meth:`~MultiWorkcellCoordinator.add_run_listener`) *as each
  shard finishes a run* -- this is how campaign records stream into a
  :class:`~repro.publish.portal.DataPortal` live instead of being merged
  post-hoc -- and :meth:`~MultiWorkcellCoordinator.status` snapshots the
  whole fleet (per-shard queue depth, in-flight runs, utilisation,
  active/draining/drained state) at any moment;
* **determinism**: engines only interact through the shared job queue, whose
  pops are ordered by the merged event loop; given the same seeds, job list
  and attach/drain schedule, the assignment and every sampled duration are
  reproducible.

Thread and event-loop safety
----------------------------

The coordinator is **single-threaded**: it owns the merged event loop and
every callback (dispatcher claims, run listeners, scheduled attach/drain
hooks) runs synchronously inside that loop.  None of its methods may be
called from another thread.  The safe re-entry points *within* the loop are:

* :meth:`attach_workcell` / :meth:`drain_workcell` -- callable from run
  listeners and from events scheduled on any shard's
  :class:`~repro.sim.events.EventScheduler`.  An attach is visible to the
  merged loop on its very next iteration (the new shard's dispatchers are
  submitted, and therefore claim their first job, before the call returns);
  a drain takes effect at each lane's next claim boundary -- in-flight runs
  always finish, including two-phase action completions already scheduled.
* :meth:`status` -- a read-only snapshot, consistent at any event boundary.

Every other mutation (claim bookkeeping, completion counters, fleet-event
entries) becomes visible to callers exactly when the event that produced it
has been processed by the merged loop.

Each engine still runs the two-phase action lifecycle internally, so deck
mutations land at action completion on every shard.
"""

from __future__ import annotations

import inspect
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, Generator, List, Optional, Sequence, Tuple

from repro.obs import metrics as obs_metrics
from repro.sim.durations import ModuleSpeedProfile, paper_calibrated_durations
from repro.wei.concurrent import (
    ConcurrencyError,
    ConcurrentWorkflowEngine,
    ProgramHandle,
    RunSpanHooks,
    claim_jobs,
)
from repro.wei.workcell import Workcell, build_color_picker_workcell

__all__ = [
    "SHARD_SEED_STRIDE",
    "shard_seed",
    "ShardAssignment",
    "RunCompletion",
    "ShardStatus",
    "FleetStatus",
    "MultiWorkcellCoordinator",
]

#: Stride between consecutive shards' root seeds: large and prime so derived
#: per-device child seeds never collide between shards.  Every place that
#: builds a fleet shard (fleet builder, campaign layer, CLI attach) derives
#: its seed through :func:`shard_seed`, so the fleet stays reproducible no
#: matter which entry point constructed it.
SHARD_SEED_STRIDE = 100_003


def shard_seed(seed: Optional[int], shard: int) -> Optional[int]:
    """Deterministic root seed for fleet shard ``shard`` (``None`` stays unseeded)."""
    return None if seed is None else seed + SHARD_SEED_STRIDE * shard

#: Assignment policies understood by :meth:`MultiWorkcellCoordinator.run_jobs`:
#: ``"work-stealing"`` pulls jobs in submission order, ``"stealing-lpt"``
#: pulls them longest-predicted-duration-first (classic LPT list scheduling,
#: needs a ``duration_hint``; lane-aware when the hint takes the lane's
#: duration table), ``"lookahead"`` re-ranks the remaining queue each time a
#: lane frees by predicted-finish-on-that-lane, drift-corrected online (also
#: needs a ``duration_hint``), ``"static"`` pins job ``i`` to lane ``i % L``.
#: See ``docs/scheduling.md`` for the full matrix.
ASSIGNMENT_POLICIES = ("work-stealing", "stealing-lpt", "lookahead", "static")

#: EWMA smoothing for the lookahead policy's observed-vs-predicted drift
#: ratio, and the minimum simulated seconds a deferring lane sleeps before
#: re-evaluating the queue (strictly positive so deferral always advances
#: simulated time -- the livelock guard).
LOOKAHEAD_DRIFT_ALPHA = 0.3
LOOKAHEAD_MIN_DEFER_S = 1.0

#: Claim slack for lookahead's lane comparison: a lane claims a job unless
#: another live lane would finish it strictly sooner by more than this
#: (floating-point guard so equal-speed lanes do not mutually defer).
_LOOKAHEAD_EPS = 1e-9

#: Lifecycle states a shard moves through: ``active`` (claiming jobs),
#: ``draining`` (finishing in-flight runs, claiming nothing new) and
#: ``drained`` (retired from the fleet; kept in the shard list so shard ids
#: stay stable).
SHARD_STATES = ("active", "draining", "drained")


@dataclass(frozen=True)
class ShardAssignment:
    """Where one job of a coordinated campaign executed."""

    job_index: int
    shard: int
    workcell: str
    lane: Any


@dataclass(frozen=True)
class RunCompletion:
    """One finished job, delivered to run listeners as the shard completes it.

    ``time`` is the completing shard's simulated clock at the moment the
    job's program returned.  Listeners fire synchronously inside the merged
    event loop, in registration order, *before* the completing lane claims
    its next job -- so a listener that streams the run into a portal makes
    the record visible to every later listener of the same completion.
    """

    job_index: int
    job: Any
    result: Any
    assignment: ShardAssignment
    time: float


@dataclass(frozen=True)
class ShardStatus:
    """One shard's slice of a :class:`FleetStatus` snapshot."""

    shard_id: int
    workcell: str
    state: str
    #: Jobs this shard could still claim: the shared queue's depth for an
    #: active work-stealing shard, 0 once draining/drained (such a shard
    #: claims nothing new) and the sum of its private lane queues when
    #: statically pinned.
    queue_depth: int
    #: Jobs claimed but not yet completed on this shard.
    in_flight: int
    claimed: int
    completed: int
    utilisation: float
    makespan: float
    #: Execution mode of the shard's engine: ``"sim"`` or its driver names
    #: (a fleet may mix simulated and transport-backed workcells).
    transport: str = "sim"
    #: Wire-level command retransmissions this shard's transports performed
    #: (0 for sim/paced shards, whose delivery cannot lose frames).
    retries: int = 0
    #: Reconnect-with-resync cycles this shard's transports survived.
    resyncs: int = 0
    #: Completion-delivery latency percentiles (real posted->consumed
    #: seconds) from the shard bridge's registry histogram; ``None`` for
    #: pure-simulation shards or before the first delivery.
    delivery_p50_s: Optional[float] = None
    delivery_p95_s: Optional[float] = None
    #: Queue-wait percentiles and windowed mean (real seconds between a job
    #: entering the campaign queue and this shard claiming it) from the
    #: shard's registry histogram; ``None`` before the shard's first claim.
    #: Mean and percentiles are all computed over the histogram's bounded
    #: recent window, so the fleet-status latency columns share one time
    #: window.
    queue_wait_p50_s: Optional[float] = None
    queue_wait_p95_s: Optional[float] = None
    queue_wait_mean_s: Optional[float] = None
    #: Observed-vs-predicted duration drift this shard has accumulated (EWMA
    #: of observed/predicted per completed run, 1.0 = predictions spot-on,
    #: >1 = runs take longer than predicted).  ``None`` until the shard
    #: completes its first hinted run; fed back into ``"lookahead"``
    #: re-ranking.
    predictor_drift: Optional[float] = None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form."""
        return {
            "shard_id": self.shard_id,
            "workcell": self.workcell,
            "state": self.state,
            "queue_depth": self.queue_depth,
            "in_flight": self.in_flight,
            "claimed": self.claimed,
            "completed": self.completed,
            "utilisation": self.utilisation,
            "makespan": self.makespan,
            "transport": self.transport,
            "retries": self.retries,
            "resyncs": self.resyncs,
            "delivery_p50_s": self.delivery_p50_s,
            "delivery_p95_s": self.delivery_p95_s,
            "queue_wait_p50_s": self.queue_wait_p50_s,
            "queue_wait_p95_s": self.queue_wait_p95_s,
            "queue_wait_mean_s": self.queue_wait_mean_s,
            "predictor_drift": self.predictor_drift,
        }


@dataclass(frozen=True)
class FleetStatus:
    """A consistent point-in-time snapshot of the whole fleet.

    Produced by :meth:`MultiWorkcellCoordinator.status`; safe to capture from
    a run listener mid-campaign (the snapshot is taken at an event boundary,
    so counters and states are mutually consistent).
    """

    #: Merged-loop frontier: the simulated time of the last event any shard
    #: processed (0.0 before the first event).
    time: float
    #: Jobs still waiting in the shared work-stealing queue (0 outside a
    #: campaign or under static assignment, where queues are per-lane).
    queue_depth: int
    shards: Tuple[ShardStatus, ...]

    @property
    def n_active(self) -> int:
        """Number of shards still claiming jobs."""
        return sum(1 for shard in self.shards if shard.state == "active")

    @property
    def n_draining(self) -> int:
        """Number of shards finishing in-flight runs without claiming."""
        return sum(1 for shard in self.shards if shard.state == "draining")

    @property
    def n_drained(self) -> int:
        """Number of retired shards."""
        return sum(1 for shard in self.shards if shard.state == "drained")

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form."""
        return {
            "time": self.time,
            "queue_depth": self.queue_depth,
            "n_active": self.n_active,
            "n_draining": self.n_draining,
            "n_drained": self.n_drained,
            "shards": [shard.to_dict() for shard in self.shards],
        }


@dataclass
class _Shard:
    """Mutable per-shard bookkeeping behind the public status snapshots."""

    shard_id: int
    engine: ConcurrentWorkflowEngine
    state: str = "active"
    lanes: List[Any] = field(default_factory=lambda: [None])
    claimed: int = 0
    completed: int = 0
    handles: List[ProgramHandle] = field(default_factory=list)
    queues: List[Deque[tuple]] = field(default_factory=list)
    #: Registry histogram of real seconds jobs waited in the campaign queue
    #: before this shard claimed them (the fleet-status queue-wait columns).
    queue_wait: Optional[obs_metrics.Histogram] = None
    #: EWMA of observed/predicted run-duration ratios for runs completed on
    #: this shard (``None`` until the first hinted run completes); the
    #: online correction the ``"lookahead"`` policy applies to predictions.
    drift_ewma: Optional[float] = None


@dataclass
class _CampaignContext:
    """State of the campaign currently being driven by :meth:`run_jobs`."""

    jobs: Sequence[Any]
    make_program: Callable[[Any, int, Any], Generator]
    assignment: str
    results: List[Any]
    #: The shared work-stealing queue (``None`` under static pinning).
    queue: Optional[Deque[tuple]]
    #: Real (monotonic) time each job entered its queue, for the
    #: queue-wait histograms observed at claim time.
    enqueue_wall: Dict[int, float] = field(default_factory=dict)
    #: The campaign's ``duration_hint`` and its calling convention: arity 1
    #: is the legacy ``hint(job)`` form, arity 2 passes the predicting
    #: shard's :class:`~repro.sim.durations.DurationTable` as the second
    #: argument (lane-aware prediction on heterogeneous fleets).
    duration_hint: Optional[Callable[..., float]] = None
    hint_arity: int = 1
    #: Cached raw predictions keyed ``(shard_id, job_index)`` -- each
    #: shard's table is fixed for the campaign, so one prediction per
    #: (shard, job) pair suffices however often lookahead re-ranks.
    predictions: Dict[Tuple[int, int], float] = field(default_factory=dict)
    #: Lookahead lane state, keyed by ``(shard_id, lane_position)``:
    #: the simulated time each lane is predicted (or known) to free, the
    #: lane's dispatcher handle (a finished dispatcher is no competitor) and
    #: its owning shard.  Registered *before* any dispatcher is submitted,
    #: because submission runs a dispatcher inline to its first claim.
    lane_avail: Dict[Tuple[int, int], float] = field(default_factory=dict)
    lane_handles: Dict[Tuple[int, int], ProgramHandle] = field(default_factory=dict)
    lane_shards: Dict[Tuple[int, int], "_Shard"] = field(default_factory=dict)
    #: Per-claimed-job ``(raw_prediction, claim_sim_time)`` used to update
    #: the owning shard's drift EWMA at completion.
    claim_info: Dict[int, Tuple[float, float]] = field(default_factory=dict)


def _hint_arity(hint: Callable[..., float]) -> int:
    """Calling convention of a ``duration_hint``: 1 = ``hint(job)``, 2 =
    ``hint(job, durations)`` (lane-aware, e.g.
    :func:`~repro.core.campaign.predict_experiment_duration`).

    Inspected once per campaign; uninspectable callables (builtins, some
    callables implemented in C) fall back to the legacy 1-argument form.
    """
    try:
        signature = inspect.signature(hint)
    except (TypeError, ValueError):
        return 1
    positional = 0
    for parameter in signature.parameters.values():
        if parameter.kind in (
            inspect.Parameter.POSITIONAL_ONLY,
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
        ):
            positional += 1
        elif parameter.kind == inspect.Parameter.VAR_POSITIONAL:
            return 2
    return 2 if positional >= 2 else 1


class MultiWorkcellCoordinator:
    """Shards jobs across an elastic fleet of independent workcell engines.

    Parameters
    ----------
    engines:
        One :class:`ConcurrentWorkflowEngine` per initial workcell shard.
        The engines must be distinct objects; their clocks are independent
        (shard simulations overlap in simulated time, as independent robots
        do in the real world).  More shards can join later via
        :meth:`attach_workcell`, including while a campaign is running.

    See the module docstring for the threading model: all methods must be
    called from the thread driving :meth:`run_jobs`, and only
    :meth:`attach_workcell`, :meth:`drain_workcell` and :meth:`status` are
    meant to be re-entered from callbacks inside the merged event loop.
    """

    def __init__(self, engines: Sequence[ConcurrentWorkflowEngine]):
        if not engines:
            raise ValueError("coordinator needs at least one workcell engine")
        if len({id(engine) for engine in engines}) != len(engines):
            raise ValueError("coordinator engines must be distinct")
        self._shards: List[_Shard] = [
            self._make_shard(index, engine) for index, engine in enumerate(engines)
        ]
        self.assignments: List[Optional[ShardAssignment]] = []
        #: Fleet lifecycle entries (attach / drain-requested / retirement),
        #: in the order they happened; also merged into
        #: :meth:`merged_action_log`.
        self.fleet_events: List[Dict[str, Any]] = []
        self._run_listeners: List[Callable[[RunCompletion], None]] = []
        self._campaign: Optional[_CampaignContext] = None
        self._frontier = 0.0

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _make_shard(
        shard_id: int,
        engine: ConcurrentWorkflowEngine,
        lanes: Optional[Sequence[Any]] = None,
    ) -> _Shard:
        shard = _Shard(
            shard_id=shard_id,
            engine=engine,
            lanes=list(lanes) if lanes is not None else [None],
        )
        shard.queue_wait = obs_metrics.get_registry().histogram(
            "job_queue_wait_s",
            {"workcell": engine.workcell.name, "instance": obs_metrics.next_instance()},
        )
        return shard

    @classmethod
    def build_color_picker_fleet(
        cls,
        n_workcells: int,
        *,
        seed: Optional[int] = None,
        n_ot2: int = 1,
        engine_factory: Optional[Callable[[Workcell], ConcurrentWorkflowEngine]] = None,
        module_speeds: Optional[Any] = None,
        **workcell_kwargs: Any,
    ) -> "MultiWorkcellCoordinator":
        """Build ``n_workcells`` colour-picker workcells and their engines.

        Each shard gets a distinct deterministic seed (:func:`shard_seed`)
        so device RNG streams differ between shards but the whole fleet is
        reproducible.  ``engine_factory(workcell)`` customises engine
        construction per shard -- e.g. binding a transport
        :class:`~repro.wei.drivers.registry.DriverRegistry` -- and defaults
        to a plain simulated engine.

        ``module_speeds`` describes a heterogeneous fleet: a single
        :class:`~repro.sim.durations.ModuleSpeedProfile` / mapping / spec
        string applied to every shard, or a sequence of ``n_workcells`` of
        them giving each shard its own hardware mix (e.g. shard 1's OT-2
        running 2.5x faster).  Each shard's duration table is rescaled
        accordingly; speeds touch timing only, never the science RNG
        streams.
        """
        if n_workcells < 1:
            raise ValueError(f"n_workcells must be >= 1, got {n_workcells}")
        if engine_factory is None:
            engine_factory = ConcurrentWorkflowEngine
        profiles = None
        if module_speeds is not None:
            profiles = ModuleSpeedProfile.broadcast(module_speeds, n_workcells)
        engines = []
        for shard in range(n_workcells):
            kwargs = dict(workcell_kwargs)
            if profiles is not None and not profiles[shard].is_identity:
                base = kwargs.get("durations")
                if base is None:
                    base = paper_calibrated_durations()
                kwargs["durations"] = profiles[shard].apply(base)
            workcell = build_color_picker_workcell(
                name=f"workcell-{shard}",
                seed=shard_seed(seed, shard),
                n_ot2=n_ot2,
                **kwargs,
            )
            engines.append(engine_factory(workcell))
        return cls(engines)

    # ------------------------------------------------------------------
    # Fleet views
    # ------------------------------------------------------------------
    @property
    def engines(self) -> List[ConcurrentWorkflowEngine]:
        """Every shard's engine in shard-id order (including drained shards).

        The list is rebuilt on each access so it always reflects shards
        attached mid-campaign; indices are stable shard ids.
        """
        return [shard.engine for shard in self._shards]

    @property
    def n_workcells(self) -> int:
        """Number of workcell shards in the fleet (drained shards included)."""
        return len(self._shards)

    @property
    def workcells(self) -> List[Workcell]:
        """The shards' workcells, in shard order."""
        return [shard.engine.workcell for shard in self._shards]

    @property
    def makespan(self) -> float:
        """Fleet makespan: the slowest shard bounds the campaign."""
        return max(shard.engine.makespan for shard in self._shards)

    def shard_makespans(self) -> List[float]:
        """Per-shard makespans, in shard order."""
        return [shard.engine.makespan for shard in self._shards]

    def utilisation(self) -> Dict[str, float]:
        """Busy fractions keyed ``"<module>@<workcell>"`` across the fleet."""
        merged: Dict[str, float] = {}
        for shard in self._shards:
            engine = shard.engine
            for name, value in engine.utilisation().items():
                merged[f"{name}@{engine.workcell.name}"] = value
        return merged

    def overall_utilisation(self) -> float:
        """Mean busy fraction across every module of every shard."""
        merged = self.utilisation()
        if not merged:
            return 0.0
        return sum(merged.values()) / len(merged)

    def status(self) -> FleetStatus:
        """Snapshot the fleet: per-shard queue depth, in-flight runs, state.

        Safe to call at any event boundary, including from run listeners
        while a campaign is in flight; the returned :class:`FleetStatus` is
        immutable and stays consistent after the loop moves on.
        """
        context = self._campaign
        shared_depth = 0
        if context is not None and context.queue is not None:
            shared_depth = len(context.queue)
        shards = []
        for shard in self._shards:
            if shard.state != "active" or context is None:
                depth = 0
            elif context.queue is not None:
                depth = shared_depth
            else:
                seen = set()
                depth = 0
                for queue in shard.queues:
                    if id(queue) not in seen:
                        seen.add(id(queue))
                        depth += len(queue)
            retry_stats = shard.engine.transport_retry_stats()
            delivery_p50 = delivery_p95 = None
            if shard.engine.drivers is not None:
                delivery = shard.engine.drivers.bridge.delivery_latency
                delivery_p50 = delivery.percentile(0.50)
                delivery_p95 = delivery.percentile(0.95)
            queue_p50 = queue_p95 = queue_mean = None
            if shard.queue_wait is not None:
                queue_p50 = shard.queue_wait.percentile(0.50)
                queue_p95 = shard.queue_wait.percentile(0.95)
                queue_mean = shard.queue_wait.window_mean
            shards.append(
                ShardStatus(
                    shard_id=shard.shard_id,
                    workcell=shard.engine.workcell.name,
                    state=shard.state,
                    queue_depth=depth,
                    in_flight=shard.claimed - shard.completed,
                    claimed=shard.claimed,
                    completed=shard.completed,
                    utilisation=shard.engine.overall_utilisation(),
                    makespan=shard.engine.makespan,
                    transport=shard.engine.transport_name,
                    retries=retry_stats["retries"],
                    resyncs=retry_stats["resyncs"],
                    delivery_p50_s=delivery_p50,
                    delivery_p95_s=delivery_p95,
                    queue_wait_p50_s=queue_p50,
                    queue_wait_p95_s=queue_p95,
                    queue_wait_mean_s=queue_mean,
                    predictor_drift=shard.drift_ewma,
                )
            )
        return FleetStatus(time=self._frontier, queue_depth=shared_depth, shards=tuple(shards))

    def merged_action_log(self) -> List[Dict[str, Any]]:
        """Every device command of every shard, time-sorted and shard-tagged.

        The single-stream view a fleet portal ingests: each entry is the
        record's dict form plus the originating ``workcell``, ordered by
        start time (ties broken by shard order so the merge is stable).
        Fleet lifecycle entries -- attached workcells, drain requests and
        retirements, marked by an ``"event"`` key -- are merged into the
        stream at the fleet time they happened.
        """
        entries: List[Tuple[float, int, Dict[str, Any]]] = []
        for shard in self._shards:
            engine = shard.engine
            for record in engine.workcell.action_records():
                entry = record.to_dict()
                entry["workcell"] = engine.workcell.name
                entries.append((record.start_time, shard.shard_id, entry))
        for event in self.fleet_events:
            entries.append((event["start_time"], event["shard"], dict(event)))
        entries.sort(key=lambda item: (item[0], item[1]))
        return [entry for _, _, entry in entries]

    # ------------------------------------------------------------------
    # Streaming run completions
    # ------------------------------------------------------------------
    def add_run_listener(
        self, listener: Callable[[RunCompletion], None]
    ) -> Callable[[RunCompletion], None]:
        """Register ``listener`` for every future job completion.

        Listeners fire synchronously inside the merged event loop, in
        registration order, the moment a shard's lane finishes a job --
        before that lane claims its next one.  A listener may call
        :meth:`attach_workcell`, :meth:`drain_workcell` or :meth:`status`;
        it must not call :meth:`run_jobs`.  Returns ``listener`` so the
        caller can hand it back to :meth:`remove_run_listener`.
        """
        self._run_listeners.append(listener)
        return listener

    def remove_run_listener(self, listener: Callable[[RunCompletion], None]) -> None:
        """Unregister a listener previously added with :meth:`add_run_listener`."""
        self._run_listeners.remove(listener)

    # ------------------------------------------------------------------
    # Elasticity: attach / drain
    # ------------------------------------------------------------------
    def attach_workcell(
        self, engine: ConcurrentWorkflowEngine, *, lanes: Optional[Sequence[Any]] = None
    ) -> int:
        """Add a workcell shard to the fleet; returns its stable shard id.

        Safe mid-campaign (from a run listener or a scheduled event): the new
        shard's lane dispatchers are submitted before this call returns, so
        under work stealing it claims its first pending job immediately and
        its events join the merged loop on the next iteration.  Outside a
        campaign the shard simply waits for the next :meth:`run_jobs`.

        ``lanes`` gives the shard's lane keys (passed to ``make_program`` at
        claim time; default one anonymous lane).  Attaching during a
        ``"static"`` campaign raises :class:`ValueError` -- static pinning
        fixed every job's lane up front, so a late shard could never claim
        work.
        """
        if any(shard.engine is engine for shard in self._shards):
            raise ValueError("engine is already part of this fleet")
        context = self._campaign
        if context is not None and context.queue is None:
            raise ValueError("cannot attach a workcell during a statically-pinned campaign")
        shard = self._make_shard(len(self._shards), engine, lanes)
        self._shards.append(shard)
        self._log_fleet_event("workcell-attached", shard)
        if context is not None:
            self._submit_lane_dispatchers(shard, context)
        return shard.shard_id

    def drain_workcell(self, shard_id: int) -> None:
        """Retire a shard: finish its in-flight runs, claim nothing new.

        Safe mid-campaign.  The shard's lane dispatchers observe the drain at
        their next claim boundary, so every run already claimed -- including
        any two-phase action whose completion event is still pending -- runs
        to completion before the shard retires; the retirement is then
        reported in :attr:`fleet_events` / :meth:`merged_action_log`.
        Outside a campaign the shard is idle and retires immediately.

        Raises :class:`ValueError` for unknown / already-draining shards, for
        drains during a ``"static"`` campaign (pinned jobs would be
        abandoned) and for draining the last active shard while unclaimed
        jobs remain.
        """
        try:
            shard = self._shards[shard_id]
        except IndexError:
            raise ValueError(
                f"unknown shard id {shard_id}; fleet has {len(self._shards)} shards"
            ) from None
        if shard.state != "active":
            raise ValueError(f"shard {shard_id} is already {shard.state}")
        context = self._campaign
        if context is not None:
            if context.queue is None:
                raise ValueError("cannot drain a workcell during a statically-pinned campaign")
            others = [s for s in self._shards if s.state == "active" and s is not shard]
            if not others and context.queue:
                raise ValueError(
                    f"cannot drain shard {shard_id}: it is the last active shard and "
                    f"{len(context.queue)} job(s) are still unclaimed"
                )
        shard.state = "draining"
        self._log_fleet_event("drain-requested", shard)
        if context is None or self._shard_quiescent(shard):
            self._retire(shard)

    def _log_fleet_event(self, event: str, shard: _Shard, **extra: Any) -> None:
        entry = {
            "event": event,
            "shard": shard.shard_id,
            "workcell": shard.engine.workcell.name,
            "start_time": self._frontier,
        }
        entry.update(extra)
        self.fleet_events.append(entry)

    def _shard_quiescent(self, shard: _Shard) -> bool:
        """True once a shard has no pending events and no unfinished dispatcher.

        A transport-backed shard additionally waits for every in-flight
        completion its hardware still owes (``transport_idle``), so a drain
        can never retire a workcell whose driver threads are mid-delivery.
        """
        if shard.engine.scheduler.next_time() is not None:
            return False
        if not shard.engine.transport_idle():
            return False
        return all(handle.done for handle in shard.handles)

    def _retire(self, shard: _Shard) -> None:
        shard.state = "drained"
        self._log_fleet_event(
            "workcell-retired", shard, jobs_completed=shard.completed
        )

    def _finalise_draining(self) -> None:
        for shard in self._shards:
            if shard.state == "draining" and self._shard_quiescent(shard):
                self._retire(shard)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run_jobs(
        self,
        jobs: Sequence[Any],
        make_program: Callable[[Any, int, Any], Generator],
        *,
        lanes: Optional[Sequence[Sequence[Any]]] = None,
        assignment: str = "work-stealing",
        duration_hint: Optional[Callable[[Any], float]] = None,
    ) -> List[Any]:
        """Execute ``jobs`` across the fleet and return results in job order.

        ``make_program(job, shard, lane)`` builds a job's program once a lane
        has claimed it, binding shard-local resources at claim time.
        ``lanes`` gives each shard's lane keys (default: one anonymous lane
        per shard; must cover every shard, drained ones included, so indices
        line up).  With ``assignment="work-stealing"`` (the default) all
        lanes pull from one shared queue in least-finish-time order; with
        ``"stealing-lpt"`` the same shared queue is ordered
        longest-predicted-duration-first (classic LPT list scheduling --
        starting the long jobs early avoids a lane being handed the longest
        job last, the worst case of arbitrary-order greedy), which requires
        a ``duration_hint`` returning each job's predicted duration in
        seconds (ties keep submission order); with ``"lookahead"`` each
        lane, whenever it frees, re-ranks the remaining queue by predicted
        duration *on that lane*, corrected by the shard's observed
        drift EWMA, and claims the first job no other live lane would
        finish sooner (deferring otherwise) -- the online policy for
        heterogeneous fleets; with ``"static"`` job ``i`` is pinned to lane
        ``i % L`` of the flattened lane list -- kept for benchmarking
        against the dynamic policies.

        ``duration_hint`` may take one argument (``hint(job)``, one global
        prediction) or two (``hint(job, durations)``, called with each
        predicting shard's :class:`~repro.sim.durations.DurationTable` --
        lane-aware, e.g.
        :func:`~repro.core.campaign.predict_experiment_duration`).  With a
        lane-aware hint, ``"stealing-lpt"`` orders the queue by consensus
        *normalized* predicted size (per-shard predictions divided by that
        shard's mean, averaged), so the ordering stays meaningful when lane
        speeds diverge; see ``docs/scheduling.md``.

        Run listeners (:meth:`add_run_listener`) fire as each job completes,
        and :meth:`attach_workcell` / :meth:`drain_workcell` may reshape the
        fleet while this runs; both only work under work stealing.

        Blocks until every claimed job has finished and every shard's event
        queue has drained; only then does it return, so anything a listener
        streamed (e.g. portal records) is complete before the caller resumes.
        Raises :class:`ConcurrencyError` if any shard stalls or draining left
        jobs unclaimed, and re-raises the first stored program error, exactly
        like :meth:`ConcurrentWorkflowEngine.run_until_complete`.
        """
        if assignment not in ASSIGNMENT_POLICIES:
            raise ValueError(
                f"unknown assignment policy {assignment!r}; expected one of {ASSIGNMENT_POLICIES}"
            )
        if assignment in ("stealing-lpt", "lookahead") and duration_hint is None:
            raise ValueError(
                f"assignment={assignment!r} needs a duration_hint(job) predictor "
                "to order the shared queue by predicted duration"
            )
        if self._campaign is not None:
            raise RuntimeError("run_jobs is already in flight on this coordinator")
        if lanes is not None:
            if len(lanes) != len(self._shards):
                raise ValueError("lanes must provide one lane list per workcell engine")
            for shard, shard_lanes in zip(self._shards, lanes):
                shard.lanes = list(shard_lanes)
        active = [shard for shard in self._shards if shard.state == "active"]
        if not any(shard.lanes for shard in active):
            raise ValueError("at least one lane on an active shard is required")

        results: List[Any] = [None] * len(jobs)
        self.assignments = [None] * len(jobs)
        for shard in self._shards:
            shard.handles = []
            shard.queues = []

        hint_arity = _hint_arity(duration_hint) if duration_hint is not None else 1
        shared: Optional[Deque[tuple]] = None
        if assignment in ("work-stealing", "lookahead"):
            # Lookahead keeps submission order: each lane re-ranks the
            # remaining queue itself at every claim.
            shared = deque(enumerate(jobs))
        elif assignment == "stealing-lpt":
            shared = self._lpt_queue(jobs, duration_hint, hint_arity, active)
        context = _CampaignContext(
            jobs=jobs,
            make_program=make_program,
            assignment=assignment,
            results=results,
            queue=shared,
            enqueue_wall={index: time.monotonic() for index in range(len(jobs))},
            duration_hint=duration_hint,
            hint_arity=hint_arity,
        )
        self._campaign = context
        try:
            if shared is None:
                self._submit_static_lanes(context, active, jobs)
            else:
                # Register every lane before submitting any dispatcher:
                # submission runs a dispatcher inline to its first claim,
                # and a lookahead claim must see all its competitors.
                for shard in active:
                    self._register_lookahead_lanes(shard, context)
                for shard in active:
                    self._submit_lane_dispatchers(shard, context)
            self._run_merged()
            self._finalise_draining()
            if shared:
                # A dispatcher killed by a listener exception also leaves jobs
                # unclaimed; surface the real error before the generic one.
                for shard in self._shards:
                    for handle in shard.handles:
                        if handle.error is not None:
                            raise handle.error
                unclaimed = sorted(index for index, _ in shared)
                raise ConcurrencyError(
                    f"jobs never claimed because every shard drained: {unclaimed}"
                )
        finally:
            self._campaign = None
        for shard in self._shards:
            # The merged loop drained every queue; this validates each shard
            # finished cleanly and re-raises any stored error.
            shard.engine.run_until_complete()
        return results

    def _submit_static_lanes(
        self, context: _CampaignContext, active: List[_Shard], jobs: Sequence[Any]
    ) -> None:
        flat_lanes = [
            (shard, lane) for shard in active for lane in shard.lanes
        ]
        queues: List[Deque[tuple]] = [deque() for _ in flat_lanes]
        for index, job in enumerate(jobs):
            queues[index % len(flat_lanes)].append((index, job))
        for position, (shard, lane) in enumerate(flat_lanes):
            self._submit_dispatcher(shard, lane, queues[position], context, position)

    def _predict(self, context: _CampaignContext, shard: _Shard, index: int, job: Any) -> float:
        """Raw (drift-uncorrected) predicted duration of ``job`` on ``shard``.

        Lane-aware when the campaign's hint takes the lane's duration table
        (arity 2); cached per ``(shard, job)`` since each shard's table is
        fixed for the campaign.
        """
        key = (shard.shard_id, index)
        cached = context.predictions.get(key)
        if cached is None:
            if context.hint_arity >= 2:
                cached = float(context.duration_hint(job, shard.engine.workcell.durations))
            else:
                cached = float(context.duration_hint(job))
            context.predictions[key] = cached
        return cached

    def _lpt_queue(
        self,
        jobs: Sequence[Any],
        duration_hint: Callable[..., float],
        hint_arity: int,
        active: List[_Shard],
    ) -> Deque[tuple]:
        """The ``"stealing-lpt"`` shared queue: longest-predicted-first.

        With a legacy 1-argument hint every lane predicts the same number,
        so the queue is ordered by it directly.  With a lane-aware hint the
        shards may disagree (a 2x-OT-2 shard predicts every run shorter), so
        each job is ranked by its *consensus normalized* size: each active
        shard's predictions are divided by that shard's mean prediction
        (removing the shard's overall speed) and averaged across shards --
        the intrinsic LPT size that stays meaningful when lane speeds
        diverge.  Stable sort: equal predictions keep submission order, so
        the assignment stays deterministic.
        """
        if not jobs:
            return deque()
        if hint_arity >= 2 and active:
            per_shard: List[List[float]] = []
            for shard in active:
                table = shard.engine.workcell.durations
                predictions = [float(duration_hint(job, table)) for job in jobs]
                mean = sum(predictions) / len(predictions)
                if mean > 0:
                    per_shard.append([p / mean for p in predictions])
            if per_shard:
                keys = [
                    sum(column) / len(per_shard) for column in zip(*per_shard)
                ]
            else:
                keys = [0.0] * len(jobs)
        else:
            keys = [float(duration_hint(job)) for job in jobs]
        return deque(sorted(enumerate(jobs), key=lambda item: -keys[item[0]]))

    def _live_competitors(
        self, context: _CampaignContext, lane_key: Tuple[int, int]
    ) -> List[Tuple[int, int]]:
        """Other lanes that can still claim from the shared queue."""
        competitors = []
        for key, other_shard in context.lane_shards.items():
            if key == lane_key or other_shard.state != "active":
                continue
            handle = context.lane_handles.get(key)
            if handle is not None and handle.done:
                continue
            competitors.append(key)
        return competitors

    def _lookahead_select(
        self, shard: _Shard, lane_key: Tuple[int, int], context: _CampaignContext
    ) -> Callable[[Deque[tuple]], Any]:
        """Build one lane's ``"lookahead"`` claim rule (see :func:`claim_jobs`).

        Each time this lane frees it re-ranks the remaining queue by
        drift-corrected predicted duration *on this lane* (longest first)
        and claims the first job no other live lane would finish sooner --
        comparing ``now + my_corrected_duration`` against each competitor's
        ``max(predicted_free_time, now) + its_corrected_duration``.  When
        every job would finish sooner elsewhere, the lane defers: it sleeps
        until the earliest competitor is predicted to free (at least
        :data:`LOOKAHEAD_MIN_DEFER_S`, so deferral strictly advances
        simulated time) and re-evaluates.  The ``max(..., now)`` clamp makes
        an idle competitor's availability "now", which reduces the contest
        to a pure duration comparison -- two idle lanes can never defer to
        each other for the same job, so some lane always claims and the
        queue drains.
        """

        def corrected(other: _Shard, index: int, job: Any) -> float:
            drift = other.drift_ewma if other.drift_ewma is not None else 1.0
            return self._predict(context, other, index, job) * drift

        def select(queue: Deque[tuple]) -> Any:
            now = shard.engine.clock.now()
            order = sorted(
                range(len(queue)),
                key=lambda position: -corrected(shard, *queue[position]),
            )
            competitors = self._live_competitors(context, lane_key)
            for position in order:
                index, job = queue[position]
                my_finish = now + corrected(shard, index, job)
                other_best = float("inf")
                for key in competitors:
                    other_shard = context.lane_shards[key]
                    avail = max(context.lane_avail.get(key, 0.0), now)
                    other_best = min(
                        other_best, avail + corrected(other_shard, index, job)
                    )
                if my_finish <= other_best + _LOOKAHEAD_EPS:
                    del queue[position]
                    return (index, job)
            earliest = min(
                max(context.lane_avail.get(key, 0.0), now) for key in competitors
            )
            return max(earliest - now, LOOKAHEAD_MIN_DEFER_S)

        return select

    def _register_lookahead_lanes(self, shard: _Shard, context: _CampaignContext) -> None:
        """Pre-register a shard's lanes as lookahead competitors.

        Must happen for every lane *before* any dispatcher is submitted:
        submission runs a dispatcher inline to its first claim, and that
        first claim must already see the other lanes to defer to them.
        """
        if context.assignment != "lookahead":
            return
        for position in range(len(shard.lanes)):
            key = (shard.shard_id, position)
            context.lane_shards[key] = shard
            context.lane_avail.setdefault(key, 0.0)

    def _submit_lane_dispatchers(self, shard: _Shard, context: _CampaignContext) -> None:
        self._register_lookahead_lanes(shard, context)
        for position, lane in enumerate(shard.lanes):
            self._submit_dispatcher(shard, lane, context.queue, context, position)

    def _submit_dispatcher(
        self,
        shard: _Shard,
        lane: Any,
        queue: Deque[tuple],
        context: _CampaignContext,
        position: int,
    ) -> None:
        """Submit one lane's claim-loop program, wired into fleet bookkeeping."""
        program_name = f"shard{shard.shard_id}-lane-{lane if lane is not None else position}"
        span_hooks = RunSpanHooks(shard.engine, program_name)
        lane_key = (shard.shard_id, position)
        lookahead = context.assignment == "lookahead"
        hinted = context.duration_hint is not None

        def on_claim(index: int, job: Any) -> None:
            shard.claimed += 1
            self.assignments[index] = ShardAssignment(
                job_index=index,
                shard=shard.shard_id,
                workcell=shard.engine.workcell.name,
                lane=lane,
            )
            enqueued = context.enqueue_wall.get(index)
            if enqueued is not None and shard.queue_wait is not None:
                shard.queue_wait.observe(time.monotonic() - enqueued)
            if hinted:
                now = shard.engine.clock.now()
                raw = self._predict(context, shard, index, job)
                context.claim_info[index] = (raw, now)
                if lookahead:
                    drift = shard.drift_ewma if shard.drift_ewma is not None else 1.0
                    context.lane_avail[lane_key] = now + raw * drift
            span_hooks.claimed(index, job)

        def on_done(index: int, job: Any, result: Any) -> None:
            span_hooks.done(index, job, result)
            shard.completed += 1
            now = shard.engine.clock.now()
            claim = context.claim_info.pop(index, None)
            if claim is not None:
                raw, claimed_at = claim
                if raw > 0:
                    ratio = (now - claimed_at) / raw
                    if shard.drift_ewma is None:
                        shard.drift_ewma = ratio
                    else:
                        shard.drift_ewma += LOOKAHEAD_DRIFT_ALPHA * (
                            ratio - shard.drift_ewma
                        )
            if lookahead:
                context.lane_avail[lane_key] = now
            completion = RunCompletion(
                job_index=index,
                job=job,
                result=result,
                assignment=self.assignments[index],
                time=now,
            )
            for listener in list(self._run_listeners):
                listener(completion)

        shard.queues.append(queue)
        select = self._lookahead_select(shard, lane_key, context) if lookahead else None
        handle = shard.engine.submit_program(
            claim_jobs(
                queue,
                context.results,
                lambda job: context.make_program(job, shard.shard_id, lane),
                on_claim,
                should_stop=lambda: shard.state != "active",
                on_done=on_done,
                select=select,
            ),
            name=program_name,
        )
        shard.handles.append(handle)
        if lookahead:
            context.lane_handles[lane_key] = handle

    def _run_merged(self) -> None:
        """Drive all shards, always stepping the earliest pending event.

        Shards share nothing but the job queue, so this ordering only matters
        when two lanes race for the queue -- and then the lane that frees
        earliest in simulated time must claim the next job for the
        least-finish-time guarantee to hold.  Ties go to the lower shard, so
        execution is deterministic.  The shard list is re-read every
        iteration, so workcells attached from inside an event join the merge
        immediately; draining shards are retired the moment they quiesce.
        """
        while True:
            best_shard = None
            best_time = None
            for shard in self._shards:
                pending = shard.engine.scheduler.next_time()
                if pending is None:
                    continue
                if best_time is None or pending < best_time:
                    best_time = pending
                    best_shard = shard
            if best_shard is None:
                return
            self._frontier = max(self._frontier, best_time)
            best_shard.engine.scheduler.step()
            self._finalise_draining()
