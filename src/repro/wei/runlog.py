"""Per-workflow-run timing records.

"For each workflow that is run, a file is created that details the step names
run, their start time, end time and total duration.  These files are saved
locally to the machine running the workflow manager" (paper Section 2.3).
:class:`RunLogger` keeps those records in memory and optionally writes one
JSON file per run to a directory, mirroring the paper's behaviour.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from repro.wei.engine import WorkflowRunResult

__all__ = ["RunLogger"]


class RunLogger:
    """Collects :class:`~repro.wei.engine.WorkflowRunResult` records.

    Parameters
    ----------
    directory:
        When given, each recorded run is also written to
        ``<directory>/<index>_<workflow_name>.json``.
    """

    def __init__(self, directory: Optional[Path] = None):
        self.directory = Path(directory) if directory is not None else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self.runs: List["WorkflowRunResult"] = []

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_run(self, run: "WorkflowRunResult") -> None:
        """Store one workflow run (and write its JSON file when configured)."""
        self.runs.append(run)
        if self.directory is not None:
            path = self.directory / f"{len(self.runs):05d}_{run.workflow_name}.json"
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(run.to_dict(), handle, indent=2, default=str)

    # ------------------------------------------------------------------
    # Queries used by the metrics module
    # ------------------------------------------------------------------
    @property
    def n_runs(self) -> int:
        """Number of workflow runs recorded."""
        return len(self.runs)

    def runs_for(self, workflow_name: str) -> List["WorkflowRunResult"]:
        """All recorded runs of the named workflow."""
        return [run for run in self.runs if run.workflow_name == workflow_name]

    def total_duration(self) -> float:
        """Sum of all workflow run durations (seconds)."""
        return sum(run.duration for run in self.runs)

    def workflow_counts(self) -> Dict[str, int]:
        """Mapping of workflow name to the number of times it ran."""
        counts: Dict[str, int] = {}
        for run in self.runs:
            counts[run.workflow_name] = counts.get(run.workflow_name, 0) + 1
        return counts

    def module_busy_time(self) -> Dict[str, float]:
        """Total step time attributed to each module across all runs."""
        busy: Dict[str, float] = {}
        for run in self.runs:
            for step in run.steps:
                busy[step.module] = busy.get(step.module, 0.0) + step.duration
        return busy

    def to_dicts(self) -> List[Dict]:
        """All runs in JSON-serialisable form."""
        return [run.to_dict() for run in self.runs]

    # ------------------------------------------------------------------
    # Round-trip
    # ------------------------------------------------------------------
    def dump(self, path) -> None:
        """Write every recorded run to a single JSON file."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dicts(), handle, indent=2, default=str)

    @staticmethod
    def load_dicts(path) -> List[Dict]:
        """Read back a file written by :meth:`dump` (as plain dicts)."""
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
