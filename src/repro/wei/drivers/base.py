"""The device-driver protocol: asynchronous transports behind the modules.

On the real workcell every module fronts a network service: the engine sends
a command, the device's driver accepts it immediately, and the *completion*
arrives later from whatever thread the driver's transport uses to poll or
receive callbacks (paper Section 2.2: workflow steps "call driver functions
specific to their attached device").  The simulation so far collapsed those
two moments -- every :class:`~repro.wei.module.ActionSubmission` was
completed inline on the engine's own event loop.  This package restores the
split:

* :class:`DeviceDriver` is the protocol a transport implements:
  :meth:`~DeviceDriver.submit` accepts an already-validated action and
  returns a :class:`TransportTicket`; :meth:`~DeviceDriver.on_completion`
  registers the callback(s) the driver fires -- **from its own threads,
  never the submitting one** -- when the hardware reports the action done.
* :class:`TransportTicket` / :class:`TransportCompletion` are the two halves
  of one transport round-trip, matched by ``ticket_id``.
* :class:`~repro.wei.drivers.bridge.CompletionBridge` marries the driver's
  callback threads to the engine's single-threaded two-phase lifecycle.
* :class:`~repro.wei.drivers.mock.PacedMockTransport` is the reference
  driver: it paces each action's sampled duration against a
  :class:`~repro.sim.clock.WallClock` (with a configurable speedup) on a
  background worker and posts completions strictly out-of-band.

Driver errors
-------------

:class:`DriverError` is the base; :class:`CompletionTimeout` is raised by
the engine side when a ticket's completion never arrives within the
configured real-time window, and :class:`InBandCompletionError` when a
driver misbehaves by delivering a completion from the thread that is
consuming it (which would silently serialise "asynchronous" hardware).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Protocol, runtime_checkable

__all__ = [
    "DriverError",
    "CompletionTimeout",
    "InBandCompletionError",
    "TransportTicket",
    "TransportCompletion",
    "DeviceDriver",
]


class DriverError(RuntimeError):
    """Base class for transport-layer failures."""


class CompletionTimeout(DriverError):
    """A ticket's completion never arrived within the real-time deadline."""


class InBandCompletionError(DriverError):
    """A completion was delivered from the thread consuming it (not out-of-band)."""


@dataclass(frozen=True)
class TransportTicket:
    """Phase-one receipt for an action handed to a device driver.

    ``duration_s`` is the action's already-sampled simulated duration (the
    device drew it at submission, exactly as in pure simulation); the
    transport decides how much *real* time that maps to.  ``sim_start`` /
    ``sim_end`` are the simulated timestamps the engine recorded, so drivers
    and diagnostics can correlate transport traffic with the run log.
    """

    ticket_id: str
    module: str
    action: str
    duration_s: float
    sim_start: float = 0.0
    sim_end: float = 0.0


@dataclass
class TransportCompletion:
    """One out-of-band "action finished" message from a driver.

    ``posted_monotonic`` is stamped (real :func:`time.monotonic` seconds)
    when the driver hands the completion over; ``delivered_monotonic`` when
    the engine thread consumes it.  Their difference is the
    completion-delivery latency the benchmarks report.  ``thread_id`` /
    ``thread_name`` identify the posting thread so tests can assert no
    completion was ever produced on the engine thread.
    """

    ticket_id: str
    module: str
    action: str
    error: Optional[str] = None
    posted_monotonic: float = field(default=0.0)
    delivered_monotonic: Optional[float] = None
    thread_id: int = 0
    thread_name: str = ""
    details: Dict[str, Any] = field(default_factory=dict)

    @staticmethod
    def for_ticket(ticket: TransportTicket, error: Optional[str] = None) -> "TransportCompletion":
        """Build a completion for ``ticket``, stamped with the calling thread."""
        current = threading.current_thread()
        return TransportCompletion(
            ticket_id=ticket.ticket_id,
            module=ticket.module,
            action=ticket.action,
            error=error,
            posted_monotonic=time.monotonic(),
            thread_id=current.ident or 0,
            thread_name=current.name,
        )

    @property
    def latency_s(self) -> Optional[float]:
        """Real seconds between posting and engine-side delivery (None if unconsumed)."""
        if self.delivered_monotonic is None:
            return None
        return self.delivered_monotonic - self.posted_monotonic


@runtime_checkable
class DeviceDriver(Protocol):
    """What every transport must implement to back a module's actions.

    Implementations accept actions whose simulated duration was already
    sampled by the device (phase one of the two-phase lifecycle) and later
    announce their completion to every registered callback.  Callbacks MUST
    be fired from a driver-owned thread, never from inside :meth:`submit` on
    the submitting thread -- the completion path is the whole point of the
    protocol.
    """

    #: Human-readable driver name, surfaced by ``Module.describe()``.
    name: str

    def submit(self, action: str, *, module: str, duration_s: float, **kwargs: Any) -> TransportTicket:
        """Accept ``action`` for ``module`` and return its ticket."""
        ...

    def on_completion(self, callback: Callable[[TransportCompletion], None]) -> None:
        """Register ``callback`` for every future completion (idempotent per callback)."""
        ...

    def pending(self) -> int:
        """Number of accepted actions whose completion has not been posted yet."""
        ...

    def close(self) -> None:
        """Stop worker threads; in-flight actions may be dropped."""
        ...
