"""The completion bridge: driver callback threads -> the engine's event loop.

The :class:`~repro.wei.concurrent.ConcurrentWorkflowEngine` is strictly
single-threaded -- every deck mutation, timeline reservation and program
resume happens on the thread driving its event loop.  Hardware drivers are
not: their completions arrive from worker/callback threads at unpredictable
real times and possibly out of order.  :class:`CompletionBridge` is the only
object both sides touch:

* drivers call :meth:`post` from **their** threads; the completion is parked
  in a queue under a condition variable,
* the engine calls :meth:`wait_for` from **its** thread at the action's
  scheduled end event; it blocks (real time) until that ticket's completion
  arrives, then applies the two-phase
  :meth:`~repro.wei.module.ActionSubmission.complete` itself -- so state
  mutations still happen on exactly one thread.

Fault semantics (deterministic by construction):

* a repeated delivery for a ticket that already arrived -- pending or
  consumed -- is **rejected as a duplicate** (counted once per extra post),
* a delivery for a ticket the engine already gave up on (:meth:`wait_for`
  timed out) is **rejected as late**,
* a ticket whose completion never arrives raises
  :class:`~repro.wei.drivers.base.CompletionTimeout` on the engine side,
* a completion posted from the same thread that consumes it raises
  :class:`~repro.wei.drivers.base.InBandCompletionError` -- drivers must be
  out-of-band, and the bridge enforces it.

Every accepted completion is retained (with posting-thread identity and
posted/delivered timestamps) so tests and benchmarks can audit threading and
delivery latency after a run.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Set

from repro.analysis.runtime import make_condition, owner_check
from repro.obs import metrics as obs_metrics
from repro.obs import recorder as obs_recorder
from repro.obs import tracer as obs_tracer
from repro.wei.drivers.base import (
    CompletionTimeout,
    InBandCompletionError,
    TransportCompletion,
    TransportTicket,
)

__all__ = ["BridgeStats", "CompletionBridge"]


@dataclass(frozen=True)
class BridgeStats:
    """Counters snapshot for one :class:`CompletionBridge`."""

    registered: int
    delivered: int
    outstanding: int
    rejected_duplicate: int
    rejected_late: int
    timed_out: int

    def to_dict(self) -> Dict[str, int]:
        """JSON-serialisable form (portal / CLI reporting)."""
        return {
            "registered": self.registered,
            "delivered": self.delivered,
            "outstanding": self.outstanding,
            "rejected_duplicate": self.rejected_duplicate,
            "rejected_late": self.rejected_late,
            "timed_out": self.timed_out,
        }


class CompletionBridge:
    """Thread-safe mailbox pairing transport tickets with their completions."""

    def __init__(self, *, name: str = "bridge") -> None:
        # Instrumentable under repro.analysis.runtime: the bridge's condition
        # variable is a node in the lock-order graph when analysis is active.
        self._cond = make_condition("completion-bridge")
        self.name = name
        #: Tickets the engine has announced (id -> ticket), not yet resolved.
        self._outstanding: Dict[str, TransportTicket] = {}
        #: Completions posted but not yet consumed by the engine.
        self._arrived: Dict[str, TransportCompletion] = {}
        #: Ticket ids whose completion the engine consumed.
        self._consumed: Set[str] = set()
        #: Ticket ids the engine gave up on (wait_for timed out).
        self._timed_out: Set[str] = set()
        #: Every accepted completion, in delivery order (audit trail).
        self.delivered: List[TransportCompletion] = []
        #: Every rejected completion, in rejection order.
        self.rejected: List[TransportCompletion] = []
        # Counters live on the metrics registry (docs/observability.md);
        # BridgeStats stays their thin view.  Mutation happens under
        # self._cond, exactly like the plain ints they replaced.
        registry = obs_metrics.get_registry()
        labels = {"bridge": name, "instance": obs_metrics.next_instance()}
        self._m_registered = registry.counter("bridge_registered_total", labels)
        self._m_delivered = registry.counter("bridge_delivered_total", labels)
        self._m_rejected_duplicate = registry.counter("bridge_rejected_duplicate_total", labels)
        self._m_rejected_late = registry.counter("bridge_rejected_late_total", labels)
        self._m_timed_out = registry.counter("bridge_timed_out_total", labels)
        #: Delivery latency distribution (posted -> consumed); the fleet
        #: status columns read p50/p95 straight off this histogram.
        self.delivery_latency = registry.histogram("completion_delivery_latency_s", labels)

    # ------------------------------------------------------------------
    # Engine side
    # ------------------------------------------------------------------
    def register(self, ticket: TransportTicket) -> TransportTicket:
        """Announce an in-flight ticket (engine thread, right after submit).

        Registration is what :meth:`outstanding` counts; a completion that
        races in *before* registration is simply parked and matched here.
        """
        owner_check(self, "engine-side")
        with self._cond:
            if ticket.ticket_id in self._consumed or ticket.ticket_id in self._timed_out:
                raise ValueError(f"ticket {ticket.ticket_id!r} was already resolved")
            self._outstanding[ticket.ticket_id] = ticket
            self._m_registered.inc()
        return ticket

    def wait_for(self, ticket: TransportTicket, timeout_s: float) -> TransportCompletion:
        """Block until ``ticket``'s completion arrives; deliver it exactly once.

        ``timeout_s`` is a *real-time* deadline: hardware that stops talking
        must fail the run instead of hanging it.  On timeout the ticket is
        marked resolved, so a completion limping in afterwards is rejected
        as late rather than resurrecting a dead action.
        """
        owner_check(self, "engine-side")
        deadline = time.monotonic() + timeout_s
        try:
            with obs_tracer.span(
                "bridge.deliver",
                parent_id=obs_tracer.bound(ticket.ticket_id),
                ticket_id=ticket.ticket_id,
                module=ticket.module,
                action=ticket.action,
            ):
                with self._cond:
                    while ticket.ticket_id not in self._arrived:
                        remaining = deadline - time.monotonic()
                        if remaining > 0:
                            self._cond.wait(remaining)
                        # Re-check the predicate before declaring a timeout: a post()
                        # may have raced in exactly as the wait expired, and a
                        # completion that arrived within the window must be honoured.
                        if ticket.ticket_id in self._arrived:
                            break
                        if deadline - time.monotonic() <= 0:
                            self._outstanding.pop(ticket.ticket_id, None)
                            self._timed_out.add(ticket.ticket_id)
                            self._m_timed_out.inc()
                            raise CompletionTimeout(
                                f"completion for {ticket.module}.{ticket.action} "
                                f"(ticket {ticket.ticket_id}) did not arrive within {timeout_s}s"
                            )
                    completion = self._arrived.pop(ticket.ticket_id)
                    self._outstanding.pop(ticket.ticket_id, None)
                    self._consumed.add(ticket.ticket_id)
                    if completion.thread_id == threading.get_ident():
                        # In-band delivery: resolve the ticket but record the
                        # completion as rejected, not delivered, so post-run audits
                        # of `delivered` never see a completion the bridge refused.
                        self.rejected.append(completion)
                        raise InBandCompletionError(
                            f"completion for {ticket.module}.{ticket.action} was posted from "
                            f"the consuming thread ({completion.thread_name!r}); drivers must "
                            "deliver completions out-of-band"
                        )
                    completion.delivered_monotonic = time.monotonic()
                    self.delivered.append(completion)
                    self._m_delivered.inc()
                    if completion.latency_s is not None:
                        self.delivery_latency.observe(completion.latency_s)
        except CompletionTimeout:
            # Dump the flight recorder outside the bridge lock: the ring
            # holds the causal history that led up to the silent device.
            obs_recorder.flight_dump(
                "completion-timeout",
                ticket_id=ticket.ticket_id,
                module=ticket.module,
                action=ticket.action,
                timeout_s=timeout_s,
            )
            raise
        return completion

    def outstanding(self) -> int:
        """Number of registered tickets not yet delivered or timed out."""
        with self._cond:
            return len(self._outstanding)

    def is_resolved(self, ticket_id: str) -> bool:
        """True once ``ticket_id`` was consumed by the engine or timed out."""
        with self._cond:
            return ticket_id in self._consumed or ticket_id in self._timed_out

    # ------------------------------------------------------------------
    # Driver side
    # ------------------------------------------------------------------
    def post(self, completion: TransportCompletion) -> bool:
        """Deliver one completion (any thread); returns True when accepted.

        Duplicates (the ticket already has a pending or consumed
        completion) and late arrivals (the engine already timed the ticket
        out) are rejected deterministically and counted, never raised --
        a flaky transport must not crash the driver's own thread.
        """
        if completion.posted_monotonic == 0.0:
            completion.posted_monotonic = time.monotonic()
        with obs_tracer.span(
            "bridge.post",
            parent_id=obs_tracer.bound(completion.ticket_id),
            ticket_id=completion.ticket_id,
        ) as post_span:
            with self._cond:
                ticket_id = completion.ticket_id
                if ticket_id in self._arrived or ticket_id in self._consumed:
                    self._m_rejected_duplicate.inc()
                    self.rejected.append(completion)
                    post_span.set(accepted=False, reason="duplicate")
                    return False
                if ticket_id in self._timed_out:
                    self._m_rejected_late.inc()
                    self.rejected.append(completion)
                    post_span.set(accepted=False, reason="late")
                    return False
                self._arrived[ticket_id] = completion
                self._cond.notify_all()
                post_span.set(accepted=True)
                return True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> BridgeStats:
        """Counters snapshot, taken atomically under the bridge lock.

        A thin view over the metrics-registry counters the bridge mutates
        under that same lock, so the returned fields are mutually
        consistent (no reader-thread increment can land between them).
        """
        with self._cond:
            return BridgeStats(
                registered=int(self._m_registered.value),
                delivered=len(self.delivered),
                outstanding=len(self._outstanding),
                rejected_duplicate=int(self._m_rejected_duplicate.value),
                rejected_late=int(self._m_rejected_late.value),
                timed_out=len(self._timed_out),
            )

    def delivery_latencies(self) -> List[float]:
        """Real posted->consumed latency (seconds) of every delivered completion."""
        with self._cond:
            return [c.latency_s for c in self.delivered if c.latency_s is not None]
