"""Driver registry: which transport backs which module type.

One engine owns one :class:`DriverRegistry`; the registry owns the
:class:`~repro.wei.drivers.bridge.CompletionBridge` every bound driver posts
into, so the engine has a single completion queue to drain regardless of how
many distinct transports the workcell mixes (an OT-2 speaking HTTP, a PF400
on a serial bridge, ...).  Lookup is by module *name* first (``"ot2_2"``),
then module *type* (``"ot2"``); modules with no binding simply run in pure
simulation -- a workcell can migrate to real transports one device at a
time.
"""

from __future__ import annotations

from typing import Dict, List, Optional, TYPE_CHECKING

from repro.wei.drivers.base import DeviceDriver
from repro.wei.drivers.bridge import CompletionBridge

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.wei.module import Module
    from repro.wei.workcell import Workcell

__all__ = ["DriverRegistry"]


class DriverRegistry:
    """Maps module types (or specific module names) to device drivers."""

    def __init__(self, bridge: Optional[CompletionBridge] = None) -> None:
        self.bridge = bridge if bridge is not None else CompletionBridge()
        self._by_type: Dict[str, DeviceDriver] = {}
        self._by_name: Dict[str, DeviceDriver] = {}
        self._connected: List[int] = []

    # ------------------------------------------------------------------
    # Binding
    # ------------------------------------------------------------------
    def _connect(self, driver: DeviceDriver) -> DeviceDriver:
        if id(driver) not in self._connected:
            driver.on_completion(self.bridge.post)
            self._connected.append(id(driver))
        return driver

    def bind_type(self, module_type: str, driver: DeviceDriver) -> DeviceDriver:
        """Back every module of ``module_type`` with ``driver``."""
        self._by_type[module_type] = self._connect(driver)
        return driver

    def bind_module(self, module_name: str, driver: DeviceDriver) -> DeviceDriver:
        """Back the specific module ``module_name`` (wins over its type binding)."""
        self._by_name[module_name] = self._connect(driver)
        return driver

    def driver_for(self, module: "Module") -> Optional[DeviceDriver]:
        """The driver backing ``module``, or ``None`` for pure simulation."""
        driver = self._by_name.get(module.name)
        if driver is None:
            driver = self._by_type.get(module.module_type)
        return driver

    def attach(self, workcell: "Workcell") -> Dict[str, str]:
        """Record each bound module's driver on the module itself.

        Returns ``{module_name: driver_name}`` for every module that got a
        binding; :meth:`Module.describe` then reports the transport, which
        is how ``fleet-status`` / ``workcell`` views show what is simulated
        and what rides a real transport.
        """
        bound: Dict[str, str] = {}
        for module in workcell.modules.values():
            driver = self.driver_for(module)
            module.bind_driver(driver)
            if driver is not None:
                bound[module.name] = driver.name
        return bound

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def drivers(self) -> List[DeviceDriver]:
        """Every distinct bound driver (registration order)."""
        unique: List[DeviceDriver] = []
        for driver in list(self._by_name.values()) + list(self._by_type.values()):
            if all(existing is not driver for existing in unique):
                unique.append(driver)
        return unique

    def describe(self) -> Dict[str, str]:
        """``{binding: driver_name}`` for every registered binding."""
        described = {name: driver.name for name, driver in self._by_name.items()}
        described.update(
            {f"type:{module_type}": driver.name for module_type, driver in self._by_type.items()}
        )
        return described

    def close(self) -> None:
        """Close every bound driver (stops their worker threads)."""
        for driver in self.drivers():
            driver.close()

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------
    @classmethod
    def for_transport(cls, workcell: "Workcell", transport: DeviceDriver) -> "DriverRegistry":
        """Back every module type in ``workcell`` with one ``transport``.

        The registry is attached so ``Module.describe()`` reports the
        binding; :meth:`paced` and :meth:`wire` are thin wrappers over this.
        """
        registry = cls(bridge=CompletionBridge(name=f"{transport.name}-bridge"))
        for module_type in sorted({m.module_type for m in workcell.modules.values()}):
            registry.bind_type(module_type, transport)
        registry.attach(workcell)
        return registry

    @classmethod
    def paced(
        cls,
        workcell: "Workcell",
        *,
        speedup: float = 1000.0,
        name: str = "paced-mock",
        **transport_kwargs,
    ) -> "DriverRegistry":
        """One :class:`~repro.wei.drivers.mock.PacedMockTransport` for every module.

        The common real-time configuration: a single mock transport paces
        every module type present in ``workcell`` at ``speedup``x wall time,
        and the registry is attached so ``Module.describe()`` reports the
        binding.
        """
        from repro.wei.drivers.mock import PacedMockTransport

        return cls.for_transport(
            workcell, PacedMockTransport(name=name, speedup=speedup, **transport_kwargs)
        )

    @classmethod
    def wire(
        cls,
        workcell: "Workcell",
        *,
        speedup: float = 1000.0,
        name: str = "wire",
        **transport_kwargs,
    ) -> "DriverRegistry":
        """One :class:`~repro.wei.drivers.protocol.WireProtocolTransport` per workcell.

        The framed-protocol configuration: every module's actions travel as
        length-prefixed CRC frames over an in-process byte pipe, with
        ACK/retry and reconnect-with-resync.  ``transport_kwargs`` reach the
        transport constructor -- most importantly ``chaos=`` for a seeded
        :class:`~repro.wei.chaos.ChaosSchedule`.
        """
        from repro.wei.drivers.protocol import WireProtocolTransport

        return cls.for_transport(
            workcell, WireProtocolTransport(name=name, speedup=speedup, **transport_kwargs)
        )
