"""Asynchronous device drivers and transports (`repro.wei.drivers`).

The bridge from "fast simulation" to "as fast as the hardware allows": a
:class:`DeviceDriver` accepts submitted actions and completes them
out-of-band from its own threads, a :class:`CompletionBridge` hands those
completions back to the single-threaded engine, and the reference
:class:`PacedMockTransport` paces each action's simulated duration against a
speedup-scaled :class:`~repro.sim.clock.WallClock`.
:class:`WireProtocolTransport` goes one layer lower still: the same driver
contract, but spoken as length-prefixed CRC-checked frames over an
in-process byte pipe, with ACK/retry, idempotent retransmission and
reconnect-with-resync (the substrate :mod:`repro.wei.chaos` injects faults
into).  See ``docs/drivers.md`` for the threading model and fault semantics.
"""

from repro.wei.drivers.base import (
    CompletionTimeout,
    DeviceDriver,
    DriverError,
    InBandCompletionError,
    TransportCompletion,
    TransportTicket,
)
from repro.wei.drivers.bridge import BridgeStats, CompletionBridge
from repro.wei.drivers.mock import TRANSPORT_FAULTS, PacedMockTransport, TransportFaultPlan
from repro.wei.drivers.protocol import (
    BytePipe,
    Frame,
    FrameDecoder,
    FrameError,
    ProtocolDevice,
    WireProtocolTransport,
    WireStats,
    encode_frame,
)
from repro.wei.drivers.registry import DriverRegistry

__all__ = [
    "DriverError",
    "CompletionTimeout",
    "InBandCompletionError",
    "TransportTicket",
    "TransportCompletion",
    "DeviceDriver",
    "BridgeStats",
    "CompletionBridge",
    "TRANSPORT_FAULTS",
    "TransportFaultPlan",
    "PacedMockTransport",
    "Frame",
    "FrameError",
    "FrameDecoder",
    "encode_frame",
    "BytePipe",
    "ProtocolDevice",
    "WireProtocolTransport",
    "WireStats",
    "DriverRegistry",
]
