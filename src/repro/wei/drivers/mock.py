"""The reference driver: a wall-clock-paced mock transport.

:class:`PacedMockTransport` behaves like a real device service without any
hardware behind it: accepted actions "run" for their already-sampled
:class:`~repro.sim.DurationTable` duration, paced against a
:class:`~repro.sim.clock.WallClock` whose ``speedup`` factor compresses real
time (``speedup=1000`` turns an 8-hour campaign into ~29 seconds of real
pacing; ``speedup=1`` is hardware speed).  A single background worker thread
owns the due-time heap and posts every completion to the registered
callbacks -- completions are therefore *always* out-of-band, never delivered
from the thread that submitted the action.

Transport faults are injected per ticket through a
:class:`TransportFaultPlan`:

``"timeout"``
    the completion is dropped on the floor; the engine's real-time deadline
    fires and the run fails with
    :class:`~repro.wei.drivers.base.CompletionTimeout`,
``"duplicate"``
    the completion is posted twice back-to-back; the bridge dedupes the
    echo (rejected exactly once),
``"late"``
    the completion is delayed by ``late_factor`` x the action's paced
    duration.  Within the engine's deadline that is just a slow response;
    past it, the engine times out and the eventual arrival is rejected as
    late.  Either way the outcome is deterministic.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.analysis.runtime import make_condition
from repro.obs import tracer as obs_tracer
from repro.sim.clock import WallClock
from repro.wei.drivers.base import TransportCompletion, TransportTicket

__all__ = ["TRANSPORT_FAULTS", "TransportFaultPlan", "PacedMockTransport"]

#: Fault kinds understood by :class:`TransportFaultPlan`.
TRANSPORT_FAULTS = ("timeout", "duplicate", "late")


@dataclass
class TransportFaultPlan:
    """Deterministic schedule of transport faults.

    ``by_ticket`` keys faults by submission sequence number (the first
    accepted action is 0); ``by_action`` keys them by ``(module, action)``
    and fires on *every* matching submission.  Ticket-indexed entries win
    when both match.
    """

    by_ticket: Dict[int, str] = field(default_factory=dict)
    by_action: Dict[Tuple[str, str], str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for fault in list(self.by_ticket.values()) + list(self.by_action.values()):
            if fault not in TRANSPORT_FAULTS:
                raise ValueError(
                    f"unknown transport fault {fault!r}; expected one of {TRANSPORT_FAULTS}"
                )

    def fault_for(self, index: int, module: str, action: str) -> Optional[str]:
        """The fault injected into submission ``index`` of ``module.action``, if any."""
        if index in self.by_ticket:
            return self.by_ticket[index]
        return self.by_action.get((module, action))


@dataclass(order=True)
class _Delivery:
    """One scheduled completion post, ordered by due time on the worker heap."""

    due: float
    sequence: int
    ticket: TransportTicket = field(compare=False)
    #: Post the completion this many times in a row (duplicate fault = 2).
    copies: int = field(default=1, compare=False)


class PacedMockTransport:
    """A :class:`~repro.wei.drivers.base.DeviceDriver` paced by a wall clock.

    Parameters
    ----------
    speedup:
        Real-time compression factor; ignored when ``wall_clock`` is given
        (the clock's own speedup rules).  ``speedup=1000`` means one real
        second paces 1000 simulated seconds of device work.
    wall_clock:
        The pacing clock.  Defaults to ``WallClock(speedup=speedup)``; pass
        ``WallClock(sleep=False, speedup=...)`` for instant (but still
        out-of-band) completions in tests.
    fault_plan:
        Optional :class:`TransportFaultPlan` injecting transport faults.
    late_factor:
        How much extra paced time a ``"late"`` completion takes, as a
        multiple of the action's duration (default 1.0: twice as slow).
    """

    def __init__(
        self,
        *,
        name: str = "paced-mock",
        speedup: float = 1000.0,
        wall_clock: Optional[WallClock] = None,
        fault_plan: Optional[TransportFaultPlan] = None,
        late_factor: float = 1.0,
    ) -> None:
        if wall_clock is None:
            wall_clock = WallClock(speedup=speedup)
        if late_factor < 0:
            raise ValueError(f"late_factor must be >= 0, got {late_factor}")
        self.name = name
        self.clock = wall_clock
        self.fault_plan = fault_plan
        self.late_factor = late_factor
        self._callbacks: List[Callable[[TransportCompletion], None]] = []
        self._cond = make_condition("paced-transport")
        self._heap: List[_Delivery] = []
        self._sequence = itertools.count()
        self._ticket_counter = itertools.count()
        self._pending = 0
        self._running = True
        #: Submissions the fault plan swallowed (their engine wait times out).
        self.dropped: List[TransportTicket] = []
        self._worker = threading.Thread(
            target=self._work, name=f"{name}-worker", daemon=True
        )
        self._worker.start()

    # ------------------------------------------------------------------
    # DeviceDriver protocol
    # ------------------------------------------------------------------
    def submit(self, action: str, *, module: str, duration_s: float, **kwargs: Any) -> TransportTicket:
        """Accept one action; its completion will be posted after pacing.

        ``duration_s`` is simulated seconds (already sampled by the device);
        the worker converts it to real time through the wall clock's
        speedup.  Raises :class:`RuntimeError` once the transport is closed.
        """
        if duration_s < 0:
            raise ValueError(f"duration_s must be >= 0, got {duration_s}")
        with self._cond:
            if not self._running:
                raise RuntimeError(f"transport {self.name!r} is closed")
            index = next(self._ticket_counter)
            ticket = TransportTicket(
                ticket_id=f"{self.name}:{index}",
                module=module,
                action=action,
                duration_s=float(duration_s),
                sim_start=float(kwargs.get("sim_start", 0.0)),
                sim_end=float(kwargs.get("sim_end", 0.0)),
            )
            fault = (
                self.fault_plan.fault_for(index, module, action)
                if self.fault_plan is not None
                else None
            )
            if fault == "timeout":
                # The device went silent: no completion will ever be posted.
                self.dropped.append(ticket)
                return ticket
            due = self.clock.now() + duration_s
            copies = 1
            if fault == "duplicate":
                copies = 2
            elif fault == "late":
                due += self.late_factor * duration_s
            self._pending += 1
            heapq.heappush(
                self._heap,
                _Delivery(due=due, sequence=next(self._sequence), ticket=ticket, copies=copies),
            )
            self._cond.notify_all()
        return ticket

    def on_completion(self, callback: Callable[[TransportCompletion], None]) -> None:
        """Register ``callback`` for every future completion (deduplicated)."""
        with self._cond:
            if callback not in self._callbacks:
                self._callbacks.append(callback)

    def pending(self) -> int:
        """Accepted actions whose completion has not been posted yet."""
        with self._cond:
            return self._pending

    def close(self) -> None:
        """Stop the worker; undelivered completions are discarded."""
        with self._cond:
            self._running = False
            self._cond.notify_all()
        if self._worker.is_alive() and self._worker is not threading.current_thread():
            self._worker.join(timeout=5.0)

    # ------------------------------------------------------------------
    # Worker thread
    # ------------------------------------------------------------------
    def _work(self) -> None:
        while True:
            with self._cond:
                while self._running and not self._heap:
                    self._cond.wait()
                if not self._running:
                    return
                delivery = self._heap[0]
                now = self.clock.now()
                if now < delivery.due:
                    if self.clock.sleeps:
                        # Sleep at most until the earliest due completion; a
                        # newly submitted earlier one re-notifies the wait.
                        self._cond.wait(self.clock.real_seconds(delivery.due - now))
                        continue
                    # No-sleep test clock: logically jump to the due time.
                    self.clock.advance_to(delivery.due)
                heapq.heappop(self._heap)
                self._pending -= 1
                callbacks = list(self._callbacks)
            # Posting happens outside the transport lock so a callback
            # (e.g. the bridge) can never deadlock against submit().
            ticket = delivery.ticket
            with obs_tracer.span(
                "transport.deliver",
                parent_id=obs_tracer.bound(ticket.ticket_id),
                ticket_id=ticket.ticket_id,
                module=ticket.module,
                action=ticket.action,
                copies=delivery.copies,
            ):
                for _ in range(delivery.copies):
                    completion = TransportCompletion.for_ticket(ticket)
                    for callback in callbacks:
                        callback(completion)
