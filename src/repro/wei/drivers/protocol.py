"""A framed wire protocol over an in-process byte-pipe "serial" endpoint.

The :class:`~repro.wei.drivers.mock.PacedMockTransport` proved the engine can
consume out-of-band completions, but it hands Python objects across threads --
nothing can go wrong *on the wire* because there is no wire.  This module
speaks a real protocol over a byte stream, so every hardware failure mode a
serial/socket transport suffers (truncated frames, bit flips, duplicated or
reordered deliveries, dead links) exists and must be survived:

* **Frames** (:func:`encode_frame` / :class:`FrameDecoder`) are
  length-prefixed: ``magic | body-length | body | crc32(body)`` where the body
  is ``kind | sequence-number | JSON payload``.  The decoder is incremental
  and self-resynchronising -- a corrupted frame fails its CRC, is counted and
  skipped by scanning for the next magic, and never desynchronises the stream
  permanently.
* **Reliability** is end-to-end per direction.  ``SUBMIT`` frames are ACKed
  by the device; an unACKed submit is retransmitted with exponential backoff
  under the *same* sequence number, and the device deduplicates by sequence
  number so retries are idempotent (the action runs once however many copies
  of the command arrive).  ``COMPLETE`` frames are ACKed by the transport;
  the device retains and retransmits unACKed completions, and the transport
  deduplicates them before posting to the
  :class:`~repro.wei.drivers.bridge.CompletionBridge` (which dedupes again by
  ticket as the last line of defence).
* **Reconnect-with-resync**: when the link drops (a chaos-injected
  disconnect, or :meth:`BytePipe.disconnect`), the transport's reader thread
  reconnects the pipe and sends ``SYNC``; the device answers ``SYNC_ACK`` and
  immediately retransmits every unACKed completion, so nothing in flight at
  the moment the cable was yanked is lost.  Each cycle increments the
  transport's ``resyncs`` counter.

:class:`WireProtocolTransport` implements the
:class:`~repro.wei.drivers.base.DeviceDriver` protocol on top of all this:
``submit()`` frames the action and blocks (briefly) for the device ACK;
completions are decoded on the transport's reader thread -- strictly
out-of-band -- and posted through the registered callbacks exactly like the
paced mock.  The far end is :class:`ProtocolDevice`, a device-service
emulator that paces each action's already-sampled duration against a
:class:`~repro.sim.clock.WallClock`, exactly like the mock transport but
reachable only through the byte stream.

Fault injection plugs in between the two ends: a
:class:`~repro.wei.chaos.ChaosSchedule` decides, per transmission, whether a
frame is dropped, corrupted, duplicated, delayed or the link severed -- see
:mod:`repro.wei.chaos`.  Because every loss is recovered by retry/resync, a
chaos-ridden run produces the *same science* as a clean one; only wall time
and the retry counters differ, which is the invariant the soak harness
asserts.
"""

from __future__ import annotations

import heapq
import json
import struct
import threading
import time
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.analysis.runtime import make_condition
from repro.obs import metrics as obs_metrics
from repro.obs import tracer as obs_tracer
from repro.sim.clock import WallClock
from repro.wei.drivers.base import DriverError, TransportCompletion, TransportTicket

__all__ = [
    "FRAME_KINDS",
    "Frame",
    "FrameError",
    "encode_frame",
    "FrameDecoder",
    "PipeClosedError",
    "BytePipe",
    "ProtocolDevice",
    "WireStats",
    "WireProtocolTransport",
]

# ---------------------------------------------------------------------------
# Frame codec
# ---------------------------------------------------------------------------

#: Start-of-frame marker; the decoder scans for it to resynchronise after a
#: corrupted frame.
MAGIC = b"\xa5\x5a"

#: Frame kinds on the wire.  SUBMIT/ACK/NACK carry the command channel
#: (transport -> device), COMPLETE rides the completion channel (device ->
#: transport, ACKed back), SYNC/SYNC_ACK perform the reconnect handshake.
FRAME_KINDS = ("SUBMIT", "ACK", "NACK", "COMPLETE", "SYNC", "SYNC_ACK")

_KIND_CODES = {kind: index for index, kind in enumerate(FRAME_KINDS)}
_CODE_KINDS = {index: kind for index, kind in enumerate(FRAME_KINDS)}

#: Upper bound on one frame's body; anything larger in a length prefix is
#: treated as corruption (protects the decoder from waiting forever on a
#: length field a bit flip turned absurd).
MAX_BODY_BYTES = 1 << 16

_BODY_PREFIX = struct.Struct(">BI")  # kind code, sequence number
_U32 = struct.Struct(">I")

#: Shared JSON encoder: ``json.dumps`` with keyword arguments builds a fresh
#: ``JSONEncoder`` per call; pre-building one with the same options emits
#: byte-identical text ~1.3 us faster per frame.
_JSON = json.JSONEncoder(sort_keys=True, separators=(",", ":"))

#: The decoder drops its consumed prefix only once it exceeds this many bytes
#: *and* at least half the buffer -- amortised O(1) per consumed byte instead
#: of a memmove per frame.
_DECODER_COMPACT_BYTES = 4096


class FrameError(ValueError):
    """A frame failed to encode or decode."""


@dataclass(frozen=True)
class Frame:
    """One protocol message: kind, per-direction sequence number, payload."""

    kind: str
    seq: int
    payload: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in _KIND_CODES:
            raise FrameError(f"unknown frame kind {self.kind!r}; expected one of {FRAME_KINDS}")
        if not (0 <= self.seq <= 0xFFFFFFFF):
            raise FrameError(f"sequence number out of range: {self.seq}")

    @classmethod
    def _decoded(cls, kind: str, seq: int, payload: Dict[str, Any]) -> "Frame":
        """Trusted construction for the decoder's hot path.

        Skips ``__post_init__`` validation: ``kind`` was resolved through the
        kind table and ``seq`` came off a ``>I`` field, so both are valid by
        construction.  Halves the per-frame construction cost.
        """
        frame = object.__new__(cls)
        object.__setattr__(frame, "kind", kind)
        object.__setattr__(frame, "seq", seq)
        object.__setattr__(frame, "payload", payload)
        return frame


def encode_frame(frame: Frame) -> bytes:
    """Serialise ``frame``: ``magic | len(body) | body | crc32(body)``.

    The CRC covers the whole body (kind, sequence number and payload), so a
    bit flip anywhere past the length prefix is detected at the receiver.

    The CRC is accumulated incrementally over the prefix and payload (never
    materialising the body as its own object) and the frame is assembled in
    one ``join``; the wire bytes are identical to the original concatenating
    implementation.  A ``Struct.pack_into``-a-scratch-``bytearray`` variant
    was profiled too, but at these frame sizes (~100 bytes) the mandatory
    ``bytes`` copy out of the scratch buffer made it slower than the join.
    """
    payload = b"{}" if not frame.payload else _JSON.encode(frame.payload).encode("utf-8")
    body_len = _BODY_PREFIX.size + len(payload)
    if body_len > MAX_BODY_BYTES:
        raise FrameError(f"frame body too large: {body_len} bytes")
    prefix = _BODY_PREFIX.pack(_KIND_CODES[frame.kind], frame.seq)
    crc = zlib.crc32(payload, zlib.crc32(prefix))
    return b"".join((MAGIC, _U32.pack(body_len), prefix, payload, _U32.pack(crc)))


class FrameDecoder:
    """Incremental frame parser with CRC checking and magic-scan resync.

    Feed arbitrary byte chunks with :meth:`feed`; complete, CRC-valid frames
    come back in order.  A frame whose CRC fails (or whose length prefix is
    implausible) bumps :attr:`crc_errors` and is skipped by re-scanning for
    the next magic from one byte past the bad frame's start, so a single
    corrupted frame can never wedge the stream.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()
        #: Scan offset: everything before it is consumed.  Tracking the
        #: offset (instead of ``del buffer[:n]`` per frame/resync) makes a
        #: garbage-prefixed stream linear -- the old delete-one-byte resync
        #: memmoved the whole tail for every byte of garbage.
        self._pos = 0
        self.crc_errors = 0
        self.frames_decoded = 0

    def feed(self, data: bytes) -> List[Frame]:
        """Append ``data`` to the stream; return every newly completed frame."""
        buffer = self._buffer
        buffer.extend(data)
        pos = self._pos
        size = len(buffer)
        frames: List[Frame] = []
        # Locals for the per-frame loop: global/attribute lookups add up at
        # protocol rates.
        magic = MAGIC
        unpack_u32 = _U32.unpack_from
        unpack_prefix = _BODY_PREFIX.unpack_from
        crc32 = zlib.crc32
        loads = json.loads
        code_kinds = _CODE_KINDS
        make_frame = Frame._decoded
        prefix_size = _BODY_PREFIX.size
        while True:
            start = buffer.find(magic, pos)
            if start < 0:
                # No frame start in sight; keep at most one trailing byte in
                # case it is the first half of a split magic.
                pos = max(pos, size - 1)
                break
            pos = start
            if size - pos < 6:
                break
            (body_len,) = unpack_u32(buffer, pos + 2)
            if body_len > MAX_BODY_BYTES:
                # A length no sane frame has: corruption reached the prefix.
                self.crc_errors += 1
                pos += 1
                continue
            end = pos + 6 + body_len + 4
            if size < end:
                break
            body_start = pos + 6
            (crc,) = unpack_u32(buffer, body_start + body_len)
            # One memoryview slice serves both the CRC check and the body
            # extraction; a corrupt frame is rejected without copying at all.
            body_view = memoryview(buffer)[body_start : body_start + body_len]
            if crc32(body_view) != crc:
                body_view.release()
                self.crc_errors += 1
                pos += 1
                continue
            body = bytes(body_view)
            body_view.release()
            pos = end
            try:
                kind_code, seq = unpack_prefix(body)
                raw = body[prefix_size:]
                # ACK/SYNC traffic (half the frames on a healthy wire) carries
                # an empty payload; skip the JSON parse for it.
                payload = {} if raw == b"{}" else loads(raw.decode("utf-8"))
                frame = make_frame(code_kinds[kind_code], seq, payload)
            except (KeyError, ValueError, struct.error):
                # CRC-valid but semantically broken (should not happen with a
                # conforming peer); count it like corruption and move on.
                self.crc_errors += 1
                continue
            self.frames_decoded += 1
            frames.append(frame)
        # Drop the consumed prefix, amortised: always when the buffer is fully
        # consumed (cheap), otherwise only once the dead prefix is both large
        # and the majority of the buffer.
        if pos >= size:
            buffer.clear()
            pos = 0
        elif pos > _DECODER_COMPACT_BYTES and pos * 2 >= size:
            del buffer[:pos]
            pos = 0
        self._pos = pos
        return frames


# ---------------------------------------------------------------------------
# The byte pipe: an in-process full-duplex "serial port"
# ---------------------------------------------------------------------------


class PipeClosedError(DriverError):
    """An operation was attempted on a permanently closed pipe."""


class _Channel:
    """One direction of the pipe: a byte buffer under a condition variable."""

    def __init__(self, pipe: "BytePipe") -> None:
        self._pipe = pipe
        self._buffer = bytearray()

    def write(self, data: bytes) -> int:
        with self._pipe._cond:
            if self._pipe.closed or not self._pipe.connected:
                # A dead line swallows writes silently, exactly like RS-232
                # with the cable pulled: the sender only learns from the
                # missing ACK.
                return 0
            self._buffer.extend(data)
            self._pipe._cond.notify_all()
            return len(data)

    def read(self, timeout_s: float) -> Optional[bytes]:
        """Block up to ``timeout_s`` for bytes.

        Returns the available bytes, ``b""`` on timeout while connected, and
        ``None`` when the link is down (disconnected or closed) -- the EOF
        the reader threads use to enter their reconnect/park paths.
        """
        deadline = time.monotonic() + timeout_s
        with self._pipe._cond:
            while not self._buffer:
                if self._pipe.closed or not self._pipe.connected:
                    return None
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return b""
                self._pipe._cond.wait(remaining)
            data = bytes(self._buffer)
            self._buffer.clear()
            return data

    def clear(self) -> None:
        self._buffer.clear()


class BytePipe:
    """A full-duplex in-process byte stream with explicit link state.

    The transport writes commands into the A->B channel and reads completions
    from B->A; the device does the reverse.  :meth:`disconnect` models the
    cable being yanked: both channels' in-transit bytes are lost, readers get
    EOF, and writes vanish until :meth:`reconnect`.  :meth:`close` is the
    permanent shutdown used at teardown.
    """

    def __init__(self) -> None:
        # Instrumentable (repro.analysis.runtime): both endpoints nest this
        # lock under their own, so it must be a distinct graph node.
        self._cond = make_condition("byte-pipe")
        self.connected = True
        self.closed = False
        self._a_to_b = _Channel(self)
        self._b_to_a = _Channel(self)
        self.disconnects = 0

    # -- endpoint views -------------------------------------------------
    def write_a(self, data: bytes) -> int:
        """Write from side A (the transport)."""
        return self._a_to_b.write(data)

    def read_a(self, timeout_s: float) -> Optional[bytes]:
        """Read on side A (completions from the device)."""
        return self._b_to_a.read(timeout_s)

    def write_b(self, data: bytes) -> int:
        """Write from side B (the device)."""
        return self._b_to_a.write(data)

    def read_b(self, timeout_s: float) -> Optional[bytes]:
        """Read on side B (commands from the transport)."""
        return self._a_to_b.read(timeout_s)

    # -- link state -----------------------------------------------------
    def disconnect(self) -> None:
        """Sever the link: in-transit bytes are lost, readers see EOF."""
        with self._cond:
            if self.closed or not self.connected:
                return
            self.connected = False
            self.disconnects += 1
            self._a_to_b.clear()
            self._b_to_a.clear()
            self._cond.notify_all()

    def reconnect(self) -> None:
        """Restore the link after a disconnect (no-op while connected)."""
        with self._cond:
            if self.closed:
                raise PipeClosedError("cannot reconnect a closed pipe")
            if not self.connected:
                self.connected = True
            self._cond.notify_all()

    def wait_connected(self, timeout_s: float) -> bool:
        """Block until the link is up again (device side parks here)."""
        deadline = time.monotonic() + timeout_s
        with self._cond:
            while not self.connected:
                if self.closed:
                    return False
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._cond.wait(remaining)
            return True

    def close(self) -> None:
        """Permanently shut the pipe down; all readers unblock with EOF."""
        with self._cond:
            self.closed = True
            self.connected = False
            self._a_to_b.clear()
            self._b_to_a.clear()
            self._cond.notify_all()


# ---------------------------------------------------------------------------
# Chaos-aware frame sending
# ---------------------------------------------------------------------------


def _corrupt_body(encoded: bytes) -> bytes:
    """Flip one byte inside the CRC-protected body of an encoded frame.

    Corruption deliberately targets the region the CRC covers (never the
    magic or length prefix) so the receiver always *detects* it -- the
    protocol's promise is recovery from detected damage; an undetectable
    two-bit CRC collision is out of scope for a 32-bit CRC at these sizes.
    """
    target = 6 + (len(encoded) - 10) // 2  # middle of body+crc region
    corrupted = bytearray(encoded)
    corrupted[target] ^= 0xFF
    return bytes(corrupted)


def _send_frame(
    write: Callable[[bytes], int],
    frame: Frame,
    *,
    chaos: Optional[Any],
    direction: str,
    attempt: int,
    pipe: Optional[BytePipe] = None,
) -> None:
    """Encode and transmit ``frame``, applying the chaos decision for this
    ``(direction, seq, attempt)`` transmission, if a schedule is installed.

    ``drop`` discards the frame, ``corrupt`` flips a body byte (the receiver
    will CRC-reject it), ``duplicate`` writes it twice, ``delay_s`` hands the
    write to a timer thread, and ``disconnect`` severs the pipe *instead of*
    delivering -- the frame died with the link.  Decisions are keyed by the
    transmission's logical identity, never wall time, so a failing seed
    replays exactly (see :class:`~repro.wei.chaos.ChaosSchedule`).
    """
    encoded = encode_frame(frame)
    if chaos is None:
        write(encoded)
        return
    decision = chaos.decide(direction, frame.seq, attempt, kind=frame.kind)
    if decision.disconnect and pipe is not None:
        chaos.record(direction, frame, attempt, "disconnect")
        pipe.disconnect()
        return
    if decision.drop:
        chaos.record(direction, frame, attempt, "drop")
        return
    if decision.corrupt:
        chaos.record(direction, frame, attempt, "corrupt")
        encoded = _corrupt_body(encoded)
    copies = 2 if decision.duplicate else 1
    if decision.duplicate:
        chaos.record(direction, frame, attempt, "duplicate")
    if decision.delay_s > 0:
        chaos.record(direction, frame, attempt, f"delay:{decision.delay_s:.4f}")
        timer = threading.Timer(
            decision.delay_s, lambda: [write(encoded) for _ in range(copies)]
        )
        timer.daemon = True
        timer.start()
        return
    for _ in range(copies):
        write(encoded)


# ---------------------------------------------------------------------------
# The device end: a protocol-speaking service emulator
# ---------------------------------------------------------------------------


@dataclass(order=True)
class _DueCompletion:
    """A finished action waiting for its COMPLETE frame's due time.

    Stored in a heap ordered by ``(due, seq)`` -- ``seq`` is unique, so the
    ``frame`` field is never compared.
    """

    due: float
    seq: int
    frame: Frame = field(compare=False)


class ProtocolDevice:
    """The far end of the wire: accepts framed commands, paces, completes.

    One reader thread decodes command frames from the pipe; one worker thread
    owns the due-time heap (pacing each action's already-sampled duration
    against a :class:`WallClock`) and the retransmit queue for unACKed
    completions.  All protocol obligations live here:

    * every syntactically valid ``SUBMIT`` is ACKed, *including repeats* --
      the sequence number identifies the command, so a retransmitted submit
      is re-ACKed without re-running the action (idempotent retry);
    * ``COMPLETE`` frames are retained until the transport ACKs them and are
      retransmitted after ``retransmit_s`` real seconds, or immediately when
      a ``SYNC`` announces the transport reconnected.
    """

    def __init__(
        self,
        pipe: BytePipe,
        *,
        name: str = "wire-device",
        speedup: float = 1000.0,
        wall_clock: Optional[WallClock] = None,
        chaos: Optional[Any] = None,
        retransmit_s: float = 0.05,
    ) -> None:
        if retransmit_s <= 0:
            raise ValueError(f"retransmit_s must be > 0, got {retransmit_s}")
        self.name = name
        self.pipe = pipe
        self.clock = wall_clock if wall_clock is not None else WallClock(speedup=speedup)
        self.chaos = chaos
        self.retransmit_s = retransmit_s
        self._cond = make_condition("protocol-device")
        self._running = True
        self._seen_submits: Dict[int, Frame] = {}  # submit seq -> ACK frame
        self._due: List[_DueCompletion] = []
        self._unacked: Dict[int, Frame] = {}  # completion seq -> COMPLETE frame
        self._attempts: Dict[Tuple[str, int], int] = {}
        self._next_tx_seq = 0
        self._next_retransmit = 0.0
        self.completions_retransmitted = 0
        self.acks_resent = 0
        self.nacks_sent = 0
        self._decoder = FrameDecoder()
        self._reader = threading.Thread(target=self._read_loop, name=f"{name}-reader", daemon=True)
        self._worker = threading.Thread(target=self._work_loop, name=f"{name}-worker", daemon=True)
        self._reader.start()
        self._worker.start()

    @property
    def crc_errors(self) -> int:
        """Command frames this end discarded as corrupt."""
        return self._decoder.crc_errors

    # -- wire helpers ---------------------------------------------------
    def _send(self, frame: Frame) -> None:
        # Callers hold self._cond, which also serialises the attempt counters.
        key = (frame.kind, frame.seq)
        attempt = self._attempts.get(key, 0)
        self._attempts[key] = attempt + 1
        _send_frame(
            self.pipe.write_b,
            frame,
            chaos=self.chaos,
            direction=f"{self.name}:rx",
            attempt=attempt,
            pipe=self.pipe,
        )

    # -- reader thread --------------------------------------------------
    def _read_loop(self) -> None:
        while True:
            with self._cond:
                if not self._running:
                    return
            data = self.pipe.read_b(timeout_s=0.5)
            if data is None:
                # Link down: park until the transport reconnects (it owns
                # the resync handshake) or the pipe is closed for good.
                if self.pipe.closed or not self.pipe.wait_connected(timeout_s=0.5):
                    with self._cond:
                        if not self._running or self.pipe.closed:
                            return
                continue
            if not data:
                continue
            for frame in self._decoder.feed(data):
                self._handle(frame)

    def _handle(self, frame: Frame) -> None:
        if frame.kind == "SUBMIT":
            with self._cond:
                known = self._seen_submits.get(frame.seq)
                if known is not None:
                    self.acks_resent += 1
                    ack = known
                else:
                    ack = Frame(kind="ACK", seq=frame.seq)
                    self._seen_submits[frame.seq] = ack
                    self._schedule_completion(frame)
                self._send(ack)
        elif frame.kind == "ACK":
            with self._cond:
                self._unacked.pop(frame.seq, None)
        elif frame.kind == "SYNC":
            with self._cond:
                self._send(Frame(kind="SYNC_ACK", seq=frame.seq))
                # The transport lost everything in flight; re-send every
                # completion it has not ACKed, right now.
                for seq in sorted(self._unacked):
                    self.completions_retransmitted += 1
                    self._send(self._unacked[seq])
                self._next_retransmit = time.monotonic() + self.retransmit_s
                self._cond.notify_all()
        else:
            # COMPLETE/NACK/SYNC_ACK are transport-bound kinds; a conforming
            # transport never sends them.  NACK the nonsense so a human
            # watching the wire sees the protocol violation.
            with self._cond:
                self.nacks_sent += 1
                self._send(Frame(kind="NACK", seq=frame.seq, payload={"error": f"unexpected {frame.kind}"}))

    def _schedule_completion(self, submit: Frame) -> None:
        """Queue the COMPLETE for an accepted submit at its paced due time."""
        payload = submit.payload
        duration_s = float(payload.get("duration_s", 0.0))
        seq = self._next_tx_seq
        self._next_tx_seq += 1
        complete = Frame(
            kind="COMPLETE",
            seq=seq,
            payload={
                "ticket_id": payload.get("ticket_id", ""),
                "module": payload.get("module", ""),
                "action": payload.get("action", ""),
                "error": None,
                "submit_seq": submit.seq,
            },
        )
        due = self.clock.now() + duration_s
        heapq.heappush(self._due, _DueCompletion(due=due, seq=seq, frame=complete))
        self._cond.notify_all()

    # -- worker thread --------------------------------------------------
    def _work_loop(self) -> None:
        while True:
            with self._cond:
                if not self._running:
                    return
                now = time.monotonic()
                wait_s = 0.5
                # Ship every completion whose paced due time has passed.
                while self._due and self._due[0].due <= self.clock.now():
                    item = heapq.heappop(self._due)
                    self._unacked[item.seq] = item.frame
                    self._send(item.frame)
                    self._next_retransmit = max(self._next_retransmit, now + self.retransmit_s)
                if self._due:
                    if self.clock.sleeps:
                        wait_s = min(
                            wait_s, self.clock.real_seconds(self._due[0].due - self.clock.now())
                        )
                    else:
                        # No-sleep test clock: jump straight to the due time.
                        self.clock.advance_to(self._due[0].due)
                        continue
                # Retransmit completions the transport never ACKed.
                if self._unacked and now >= self._next_retransmit:
                    for seq in sorted(self._unacked):
                        self.completions_retransmitted += 1
                        self._send(self._unacked[seq])
                    self._next_retransmit = now + self.retransmit_s
                if self._unacked:
                    wait_s = min(wait_s, max(self._next_retransmit - now, 0.001))
                self._cond.wait(max(wait_s, 0.001))

    # -- lifecycle ------------------------------------------------------
    def pending(self) -> int:
        """Actions accepted but whose completion is not yet ACKed."""
        with self._cond:
            return len(self._due) + len(self._unacked)

    def close(self) -> None:
        with self._cond:
            self._running = False
            self._cond.notify_all()
        for thread in (self._reader, self._worker):
            if thread.is_alive() and thread is not threading.current_thread():
                thread.join(timeout=5.0)


# ---------------------------------------------------------------------------
# The transport end: the DeviceDriver the engine binds
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class WireStats:
    """Counters snapshot for one :class:`WireProtocolTransport`."""

    frames_sent: int
    frames_received: int
    crc_errors: int
    retries: int
    resyncs: int
    duplicates_dropped: int
    completions_retransmitted: int
    disconnects: int

    def to_dict(self) -> Dict[str, int]:
        """JSON-serialisable form (soak logs / portal / CLI reporting)."""
        return {
            "frames_sent": self.frames_sent,
            "frames_received": self.frames_received,
            "crc_errors": self.crc_errors,
            "retries": self.retries,
            "resyncs": self.resyncs,
            "duplicates_dropped": self.duplicates_dropped,
            "completions_retransmitted": self.completions_retransmitted,
            "disconnects": self.disconnects,
        }


class WireProtocolTransport:
    """A :class:`~repro.wei.drivers.base.DeviceDriver` speaking the framed protocol.

    Owns side A of a :class:`BytePipe` whose side B is served by a
    :class:`ProtocolDevice` (built automatically unless one is supplied).
    ``submit()`` runs on the engine thread: it frames the action, transmits,
    and blocks until the device's ACK arrives -- retrying with exponential
    backoff under the same sequence number when the wire eats the frame.
    Completions are decoded by the transport's own reader thread and posted
    to the registered callbacks strictly out-of-band.

    Parameters
    ----------
    speedup:
        Wall-clock compression the device paces durations against (ignored
        when ``wall_clock`` is given).
    chaos:
        Optional :class:`~repro.wei.chaos.ChaosSchedule` applied to **every
        frame in both directions**.
    ack_timeout_s / max_retries / backoff:
        Real seconds to wait for a submit ACK before retransmitting, how many
        retransmissions to attempt, and the multiplicative backoff between
        them.  The defaults survive the default chaos rates with margin.
    """

    def __init__(
        self,
        *,
        name: str = "wire",
        speedup: float = 1000.0,
        wall_clock: Optional[WallClock] = None,
        chaos: Optional[Any] = None,
        ack_timeout_s: float = 0.05,
        max_retries: int = 40,
        backoff: float = 1.5,
        max_backoff_s: float = 0.5,
        device_retransmit_s: float = 0.05,
    ) -> None:
        if ack_timeout_s <= 0:
            raise ValueError(f"ack_timeout_s must be > 0, got {ack_timeout_s}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if backoff < 1.0:
            raise ValueError(f"backoff must be >= 1, got {backoff}")
        self.name = name
        self.chaos = chaos
        self.ack_timeout_s = ack_timeout_s
        self.max_retries = max_retries
        self.backoff = backoff
        self.max_backoff_s = max_backoff_s
        self.pipe = BytePipe()
        self.device = ProtocolDevice(
            self.pipe,
            name=f"{name}-device",
            speedup=speedup,
            wall_clock=wall_clock,
            chaos=chaos,
            retransmit_s=device_retransmit_s,
        )
        self._cond = make_condition("wire-transport")
        self._running = True
        self._callbacks: List[Callable[[TransportCompletion], None]] = []
        self._decoder = FrameDecoder()
        self._next_seq = 0
        self._acked: Set[int] = set()
        self._nacked: Dict[int, str] = {}
        self._tickets: Dict[str, TransportTicket] = {}
        self._completed_ticket_ids: Set[str] = set()
        self._seen_completion_seqs: Set[int] = set()
        self._attempts: Dict[Tuple[str, int], int] = {}
        # Counters live on the metrics registry (docs/observability.md);
        # WireStats stays their thin view.  Mutation happens under
        # self._cond, exactly like the plain ints they replaced.
        registry = obs_metrics.get_registry()
        labels = {"transport": name, "instance": obs_metrics.next_instance()}
        self._m_frames_sent = registry.counter("wire_frames_sent_total", labels)
        self._m_retries = registry.counter("wire_retries_total", labels)
        self._m_resyncs = registry.counter("wire_resyncs_total", labels)
        self._m_duplicates_dropped = registry.counter("wire_duplicates_dropped_total", labels)
        self._reader = threading.Thread(target=self._read_loop, name=f"{name}-reader", daemon=True)
        self._reader.start()

    # -- wire helpers ---------------------------------------------------
    def _send(self, frame: Frame) -> int:
        """Transmit one frame; returns the attempt index used (0 = first)."""
        with self._cond:
            key = (frame.kind, frame.seq)
            attempt = self._attempts.get(key, 0)
            self._attempts[key] = attempt + 1
            self._m_frames_sent.inc()
            if attempt > 0 and frame.kind == "SUBMIT":
                self._m_retries.inc()
        with obs_tracer.span("wire.frame", kind=frame.kind, seq=frame.seq, attempt=attempt):
            _send_frame(
                self.pipe.write_a,
                frame,
                chaos=self.chaos,
                direction=f"{self.name}:tx",
                attempt=attempt,
                pipe=self.pipe,
            )
        return attempt

    # -- DeviceDriver protocol ------------------------------------------
    def submit(
        self, action: str, *, module: str, duration_s: float, **kwargs: Any
    ) -> TransportTicket:
        """Frame the action, transmit, and block until the device ACKs.

        Retries idempotently: every retransmission reuses the sequence
        number, and the device ACKs repeats without re-running the action.
        Raises :class:`~repro.wei.drivers.base.DriverError` when the wire
        stays dead through every retry.
        """
        if duration_s < 0:
            raise ValueError(f"duration_s must be >= 0, got {duration_s}")
        with self._cond:
            if not self._running:
                raise RuntimeError(f"transport {self.name!r} is closed")
            seq = self._next_seq
            self._next_seq += 1
        ticket = TransportTicket(
            ticket_id=f"{self.name}:{seq}",
            module=module,
            action=action,
            duration_s=float(duration_s),
            sim_start=float(kwargs.get("sim_start", 0.0)),
            sim_end=float(kwargs.get("sim_end", 0.0)),
        )
        with self._cond:
            self._tickets[ticket.ticket_id] = ticket
        frame = Frame(
            kind="SUBMIT",
            seq=seq,
            payload={
                "ticket_id": ticket.ticket_id,
                "module": module,
                "action": action,
                "duration_s": float(duration_s),
            },
        )
        timeout = self.ack_timeout_s
        with obs_tracer.span(
            "wire.submit", module=module, action=action, seq=seq, ticket_id=ticket.ticket_id
        ) as submit_span:
            for _ in range(self.max_retries + 1):
                self._ensure_connected()
                attempt = self._send(frame)
                if self._wait_for_ack(seq, timeout):
                    submit_span.set(attempts=attempt + 1)
                    return ticket
                timeout = min(timeout * self.backoff, self.max_backoff_s)
            raise DriverError(
                f"device never ACKed {module}.{action} (seq {seq}) "
                f"after {self.max_retries + 1} transmissions"
            )

    def _wait_for_ack(self, seq: int, timeout_s: float) -> bool:
        deadline = time.monotonic() + timeout_s
        with self._cond:
            while seq not in self._acked:
                if seq in self._nacked:
                    raise DriverError(f"device NACKed seq {seq}: {self._nacked[seq]}")
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not self._running:
                    return False
                self._cond.wait(remaining)
            return True

    def on_completion(self, callback: Callable[[TransportCompletion], None]) -> None:
        """Register ``callback`` for every future completion (deduplicated)."""
        with self._cond:
            if callback not in self._callbacks:
                self._callbacks.append(callback)

    def pending(self) -> int:
        """Accepted actions whose completion has not been delivered yet."""
        with self._cond:
            return len(self._tickets) - len(self._completed_ticket_ids)

    def close(self) -> None:
        """Stop both ends and the reader thread; the pipe closes for good."""
        with self._cond:
            self._running = False
            self._cond.notify_all()
        self.device.close()
        self.pipe.close()
        if self._reader.is_alive() and self._reader is not threading.current_thread():
            self._reader.join(timeout=5.0)

    # -- reader thread --------------------------------------------------
    def _read_loop(self) -> None:
        while True:
            with self._cond:
                if not self._running:
                    return
            data = self.pipe.read_a(timeout_s=0.5)
            if data is None:
                if self.pipe.closed:
                    return
                # Link down: the transport owns recovery.
                self._ensure_connected()
                continue
            if not data:
                continue
            for frame in self._decoder.feed(data):
                self._dispatch(frame)

    def _dispatch(self, frame: Frame) -> None:
        if frame.kind == "ACK":
            with self._cond:
                self._acked.add(frame.seq)
                self._cond.notify_all()
        elif frame.kind == "NACK":
            with self._cond:
                self._nacked[frame.seq] = str(frame.payload.get("error", "unspecified"))
                self._cond.notify_all()
        elif frame.kind == "COMPLETE":
            self._handle_complete(frame)
        # SYNC_ACK needs no action: the resync handshake is fire-and-forget
        # (see _ensure_connected) -- receiving it at all proves the link is
        # back, and the retransmissions it triggered arrive as COMPLETEs.
        # SUBMIT/SYNC are device-bound; a conforming device never sends them.

    def _handle_complete(self, frame: Frame) -> None:
        # Always ACK, even for repeats -- the device retransmits until it
        # hears us, so a swallowed ACK must not echo forever.
        self._send(Frame(kind="ACK", seq=frame.seq))
        ticket_id = str(frame.payload.get("ticket_id", ""))
        callbacks: List[Callable[[TransportCompletion], None]]
        with obs_tracer.span(
            "wire.complete",
            parent_id=obs_tracer.bound(ticket_id),
            ticket_id=ticket_id,
            seq=frame.seq,
        ) as complete_span:
            with self._cond:
                if frame.seq in self._seen_completion_seqs:
                    self._m_duplicates_dropped.inc()
                    complete_span.set(duplicate=True)
                    return
                self._seen_completion_seqs.add(frame.seq)
                ticket = self._tickets.get(ticket_id)
                if ticket is None:
                    # A completion for a command we never issued: drop it loudly
                    # in the counters rather than inventing a ticket.
                    self._m_duplicates_dropped.inc()
                    complete_span.set(duplicate=True)
                    return
                self._completed_ticket_ids.add(ticket_id)
                callbacks = list(self._callbacks)
            error = frame.payload.get("error")
            completion = TransportCompletion.for_ticket(ticket, error=error)
            for callback in callbacks:
                callback(completion)

    # -- reconnect-with-resync ------------------------------------------
    def _ensure_connected(self) -> None:
        """Reconnect a severed link and announce the resync to the device.

        Runs on whichever thread notices the dead link first (the reader on
        EOF, or the engine thread between submit retries).  Reconnecting and
        sending ``SYNC`` makes the device retransmit every unACKed
        completion immediately; the handshake is deliberately non-blocking --
        the ``SYNC_ACK`` comes back through the normal read loop, and even a
        chaos-eaten ``SYNC`` is covered by the device's periodic retransmit
        timer.  A resync therefore never loses work; it only costs wall
        time, which the ``resyncs`` counter accounts for.
        """
        with self._cond:
            if not self._running or self.pipe.closed or self.pipe.connected:
                return
            try:
                self.pipe.reconnect()
            except PipeClosedError:
                return
            self._m_resyncs.inc()
            seq = self._next_seq
            self._next_seq += 1
        with obs_tracer.span("wire.resync", transport=self.name, seq=seq):
            self._send(Frame(kind="SYNC", seq=seq))

    # -- introspection --------------------------------------------------
    def stats(self) -> WireStats:
        """Counters snapshot, taken atomically under the transport lock.

        A thin view over the metrics-registry counters the transport
        mutates under that same lock, so the returned fields are mutually
        consistent with each other (decoder/device/pipe counters remain
        owned by those components).
        """
        with self._cond:
            return WireStats(
                frames_sent=int(self._m_frames_sent.value),
                frames_received=self._decoder.frames_decoded,
                crc_errors=self._decoder.crc_errors + self.device.crc_errors,
                retries=int(self._m_retries.value),
                resyncs=int(self._m_resyncs.value),
                duplicates_dropped=int(self._m_duplicates_dropped.value),
                completions_retransmitted=self.device.completions_retransmitted,
                disconnects=self.pipe.disconnects,
            )
