"""Well-grid fitting and completion.

The Hough detector is "prone to false negatives" (paper Section 2.4): empty
wells and wells whose colour is close to the plate body produce weak edges.
The paper's fix -- reproduced here -- is to align a regular grid to all
well-sized circles that *were* found and use the grid's pitch and orientation
to predict the centre of every well, including the missed ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.vision.hough import CircleDetection

__all__ = ["GridFit", "fit_well_grid", "complete_grid"]


@dataclass(frozen=True)
class GridFit:
    """An affine model of the well grid.

    ``origin`` is the fitted pixel position of well (row 0, col 0);
    ``col_step`` and ``row_step`` are the pixel displacement per column and
    per row respectively (they encode pitch and rotation together).
    """

    origin: Tuple[float, float]
    col_step: Tuple[float, float]
    row_step: Tuple[float, float]
    rows: int
    cols: int
    inliers: int
    residual: float

    @property
    def pitch(self) -> float:
        """Mean pitch (pixels) implied by the fitted steps."""
        return float(
            (np.hypot(*self.col_step) + np.hypot(*self.row_step)) / 2.0
        )

    @property
    def rotation_deg(self) -> float:
        """Grid rotation implied by the column direction."""
        return float(np.degrees(np.arctan2(self.col_step[1], self.col_step[0])))

    def predict(self, row: int, col: int) -> Tuple[float, float]:
        """Predicted pixel centre of the well at 0-based ``row``/``col``."""
        x = self.origin[0] + col * self.col_step[0] + row * self.row_step[0]
        y = self.origin[1] + col * self.col_step[1] + row * self.row_step[1]
        return (float(x), float(y))

    def predict_all(self) -> np.ndarray:
        """Predicted centres for the full grid, shape ``(rows * cols, 2)`` row-major."""
        cols_idx, rows_idx = np.meshgrid(np.arange(self.cols), np.arange(self.rows))
        xs = self.origin[0] + cols_idx * self.col_step[0] + rows_idx * self.row_step[0]
        ys = self.origin[1] + cols_idx * self.col_step[1] + rows_idx * self.row_step[1]
        return np.stack([xs.ravel(), ys.ravel()], axis=1)


def _assign_indices(points: np.ndarray, pitch_guess: float) -> Tuple[np.ndarray, np.ndarray]:
    """Assign integer grid indices to detected centres using the pitch guess."""
    origin = points.min(axis=0)
    cols = np.rint((points[:, 0] - origin[0]) / pitch_guess).astype(int)
    rows = np.rint((points[:, 1] - origin[1]) / pitch_guess).astype(int)
    return rows, cols


def fit_well_grid(
    detections: Sequence[CircleDetection],
    rows: int = 8,
    cols: int = 12,
    pitch_guess: Optional[float] = None,
    outlier_sigma: float = 3.0,
) -> Optional[GridFit]:
    """Fit an affine grid to detected circle centres.

    Returns ``None`` when fewer than four detections are available (an affine
    grid has six parameters; four points give a stable least-squares fit).
    """
    if len(detections) < 4:
        return None
    points = np.array([[d.x, d.y] for d in detections], dtype=np.float64)

    if pitch_guess is None:
        # Median nearest-neighbour distance is a robust pitch estimate.
        deltas = points[:, None, :] - points[None, :, :]
        distances = np.hypot(deltas[..., 0], deltas[..., 1])
        np.fill_diagonal(distances, np.inf)
        pitch_guess = float(np.median(distances.min(axis=1)))
        if not np.isfinite(pitch_guess) or pitch_guess <= 0:
            return None

    row_idx, col_idx = _assign_indices(points, pitch_guess)
    # Clamp to the physical grid (stray detections outside are dropped later).
    keep = (row_idx >= 0) & (row_idx < rows) & (col_idx >= 0) & (col_idx < cols)
    if keep.sum() < 4:
        return None
    points, row_idx, col_idx = points[keep], row_idx[keep], col_idx[keep]

    def solve(pts, r_idx, c_idx):
        design = np.stack([np.ones_like(r_idx, dtype=float), c_idx.astype(float), r_idx.astype(float)], axis=1)
        solution, *_ = np.linalg.lstsq(design, pts, rcond=None)
        predicted = design @ solution
        residuals = np.hypot(*(pts - predicted).T)
        return solution, residuals

    solution, residuals = solve(points, row_idx, col_idx)
    # One round of outlier rejection guards against spurious Hough detections.
    scale = residuals.std()
    if scale > 0:
        inlier_mask = residuals <= outlier_sigma * max(scale, 1.0)
        if inlier_mask.sum() >= 4 and inlier_mask.sum() < len(points):
            points, row_idx, col_idx = points[inlier_mask], row_idx[inlier_mask], col_idx[inlier_mask]
            solution, residuals = solve(points, row_idx, col_idx)

    origin = (float(solution[0, 0]), float(solution[0, 1]))
    col_step = (float(solution[1, 0]), float(solution[1, 1]))
    row_step = (float(solution[2, 0]), float(solution[2, 1]))

    # When every detection lies in a single row (or column) the corresponding
    # step direction is unconstrained by the least-squares fit; fall back to a
    # step perpendicular to the constrained direction at the nominal pitch.
    if len(np.unique(row_idx)) < 2:
        norm = np.hypot(*col_step)
        if norm > 0:
            row_step = (-col_step[1] / norm * pitch_guess, col_step[0] / norm * pitch_guess)
        else:
            row_step = (0.0, float(pitch_guess))
    if len(np.unique(col_idx)) < 2:
        norm = np.hypot(*row_step)
        if norm > 0:
            col_step = (row_step[1] / norm * pitch_guess, -row_step[0] / norm * pitch_guess)
        else:
            col_step = (float(pitch_guess), 0.0)
    return GridFit(
        origin=origin,
        col_step=col_step,
        row_step=row_step,
        rows=rows,
        cols=cols,
        inliers=int(len(points)),
        residual=float(residuals.mean()) if len(residuals) else 0.0,
    )


def complete_grid(
    fit: GridFit,
    well_names: Sequence[str],
) -> Dict[str, Tuple[float, float]]:
    """Predict a pixel centre for every named well from the grid fit.

    ``well_names`` must be in row-major order and have length
    ``fit.rows * fit.cols`` (the standard 96 names for an 8x12 plate).
    """
    expected = fit.rows * fit.cols
    if len(well_names) != expected:
        raise ValueError(f"expected {expected} well names, got {len(well_names)}")
    predictions = fit.predict_all()
    return {
        name: (float(x), float(y)) for name, (x, y) in zip(well_names, predictions)
    }
