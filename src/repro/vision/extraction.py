"""End-to-end well-colour extraction.

This is the "process the image" step of the application (paper Section 2.4):

1. locate the fiducial marker and derive the approximate plate region,
2. run the circular Hough transform inside that region,
3. fit / complete the well grid to recover every well centre, and
4. report the mean colour in a small disk at each centre.

The extractor degrades gracefully: when the fiducial is missed the whole frame
is searched; when too few circles are found for a grid fit the nominal plate
geometry (known camera mount) is used, which mirrors how a fixed-camera SDL
would behave.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.hardware.labware import well_names
from repro.vision.fiducial import FiducialDetection, detect_fiducial
from repro.vision.grid import GridFit, complete_grid, fit_well_grid
from repro.vision.hough import CircleDetection, hough_circles
from repro.vision.render import PlateImageConfig

__all__ = ["ExtractionResult", "WellColorExtractor"]


@dataclass
class ExtractionResult:
    """Everything the vision pipeline learned from one frame."""

    well_colors: Dict[str, np.ndarray]
    well_centers: Dict[str, Tuple[float, float]]
    fiducial: Optional[FiducialDetection] = None
    circles: List[CircleDetection] = field(default_factory=list)
    grid: Optional[GridFit] = None
    used_grid_completion: bool = False

    def colors_for(self, names) -> np.ndarray:
        """Return the colours of the named wells as an ``(n, 3)`` array."""
        return np.array([self.well_colors[name] for name in names], dtype=np.float64)


class WellColorExtractor:
    """Configurable well-colour extraction pipeline.

    Parameters
    ----------
    config:
        The camera geometry (used for the nominal fallback grid and for the
        expected well radius / pitch).
    rows, cols:
        Plate dimensions.
    sample_radius:
        Radius in pixels of the disk over which each well's colour is averaged.
    use_grid_completion:
        When False, only wells with a direct Hough detection get a colour from
        the detection; the rest fall back to nominal positions.  Exposed so the
        vision benchmark can ablate the paper's grid-completion step.
    """

    def __init__(
        self,
        config: Optional[PlateImageConfig] = None,
        *,
        rows: int = 8,
        cols: int = 12,
        sample_radius: int = 5,
        use_grid_completion: bool = True,
    ):
        self.config = config if config is not None else PlateImageConfig()
        self.rows = rows
        self.cols = cols
        self.sample_radius = sample_radius
        self.use_grid_completion = use_grid_completion

    # ------------------------------------------------------------------
    # Pipeline stages
    # ------------------------------------------------------------------
    def plate_roi_from_fiducial(self, fiducial: FiducialDetection) -> Tuple[int, int, int, int]:
        """Approximate plate bounding box implied by the detected marker.

        The marker sits at a known offset from well A1 (it is attached to the
        plate mount), so its detected centre plus the nominal geometry gives
        the plate's approximate pixel extent.
        """
        cfg = self.config
        offset_x, offset_y = cfg.fiducial_offset
        origin_x = fiducial.center[0] - offset_x
        origin_y = fiducial.center[1] - offset_y
        margin = cfg.well_pitch
        x0 = int(origin_x - margin)
        y0 = int(origin_y - margin)
        x1 = int(origin_x + (self.cols - 1) * cfg.well_pitch + margin)
        y1 = int(origin_y + (self.rows - 1) * cfg.well_pitch + margin)
        return (x0, y0, x1, y1)

    def nominal_centers(self) -> Dict[str, Tuple[float, float]]:
        """Well centres assuming the plate is exactly at its nominal pose."""
        names = well_names(self.rows, self.cols)
        centers = {}
        for index, name in enumerate(names):
            row, col = divmod(index, self.cols)
            centers[name] = self.config.nominal_center(row, col)
        return centers

    def sample_color(self, image: np.ndarray, center: Tuple[float, float]) -> np.ndarray:
        """Mean colour in a disk of ``sample_radius`` pixels around ``center``."""
        height, width = image.shape[:2]
        cx, cy = center
        r = self.sample_radius
        x0, x1 = int(max(cx - r, 0)), int(min(cx + r + 1, width))
        y0, y1 = int(max(cy - r, 0)), int(min(cy + r + 1, height))
        if x0 >= x1 or y0 >= y1:
            return np.zeros(3)
        patch = image[y0:y1, x0:x1]
        yy, xx = np.mgrid[y0:y1, x0:x1]
        mask = (xx - cx) ** 2 + (yy - cy) ** 2 <= r**2
        if not mask.any():
            return patch.reshape(-1, 3).mean(axis=0)
        return patch[mask].mean(axis=0)

    def sample_colors(
        self, image: np.ndarray, centers: Dict[str, Tuple[float, float]]
    ) -> Dict[str, np.ndarray]:
        """Mean colour around every centre, vectorised across wells.

        Equivalent to calling :meth:`sample_color` per well but builds all
        patch coordinates, masks and pixel gathers in one numpy pass -- the
        per-well ``np.mgrid`` was the scoring stage's hot spot.  Each well's
        masked pixels are still averaged individually, so the result is
        bit-identical to the scalar path (a batched reduction would change
        the summation tree).  Wells whose disk is clipped by the frame edge
        fall back to :meth:`sample_color`, which owns those semantics.
        """
        height, width = image.shape[:2]
        r = self.sample_radius
        d = 2 * r + 1
        names = list(centers)
        if not names:
            return {}
        cxs = np.array([centers[name][0] for name in names], dtype=np.float64)
        cys = np.array([centers[name][1] for name in names], dtype=np.float64)
        # A well is "interior" when clamping does nothing: its d x d patch
        # lies fully inside the frame and matches the scalar path's bounds.
        interior = (
            (cxs - r >= 0.0)
            & (cys - r >= 0.0)
            & (cxs + r + 1 <= width)
            & (cys + r + 1 <= height)
        )
        colors: Dict[str, np.ndarray] = {}
        if interior.any():
            idx = np.flatnonzero(interior)
            span = np.arange(d)
            x_idx = (cxs[idx] - r).astype(np.int64)[:, None] + span  # (m, d)
            y_idx = (cys[idx] - r).astype(np.int64)[:, None] + span
            dx_sq = (x_idx - cxs[idx, None]) ** 2
            dy_sq = (y_idx - cys[idx, None]) ** 2
            masks = dx_sq[:, None, :] + dy_sq[:, :, None] <= r * r  # (m, d, d)
            patches = image[y_idx[:, :, None], x_idx[:, None, :]]  # (m, d, d, 3)
            for row, well in enumerate(idx):
                mask = masks[row]
                patch = patches[row]
                if mask.any():
                    colors[names[well]] = patch[mask].mean(axis=0)
                else:
                    colors[names[well]] = patch.reshape(-1, 3).mean(axis=0)
        for well in np.flatnonzero(~interior):
            name = names[well]
            colors[name] = self.sample_color(image, centers[name])
        # Preserve the caller's well order (dict insertion order).
        return {name: colors[name] for name in names}

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def extract(self, image: np.ndarray) -> ExtractionResult:
        """Run the full pipeline on one frame."""
        cfg = self.config
        fiducial = detect_fiducial(
            image,
            min_size=int(cfg.fiducial_size * 0.6),
            max_size=int(cfg.fiducial_size * 2.0),
        )
        roi = self.plate_roi_from_fiducial(fiducial) if fiducial.found else None

        radius = cfg.well_radius
        circles = hough_circles(
            image,
            radii=[radius - 1.0, radius, radius + 1.0],
            min_distance=cfg.well_pitch * 0.6,
            roi=roi,
            max_circles=self.rows * self.cols + 8,
        )

        names = well_names(self.rows, self.cols)
        grid = fit_well_grid(circles, rows=self.rows, cols=self.cols, pitch_guess=cfg.well_pitch)
        used_completion = False
        if grid is not None and self.use_grid_completion:
            centers = complete_grid(grid, names)
            used_completion = True
        elif circles and not self.use_grid_completion:
            # Ablation path: snap each detection to the nearest nominal well.
            centers = self.nominal_centers()
            for circle in circles:
                nearest = min(
                    centers,
                    key=lambda name: (centers[name][0] - circle.x) ** 2
                    + (centers[name][1] - circle.y) ** 2,
                )
                centers[nearest] = (circle.x, circle.y)
        else:
            centers = self.nominal_centers()

        colors = self.sample_colors(image, centers)
        return ExtractionResult(
            well_colors=colors,
            well_centers=centers,
            fiducial=fiducial,
            circles=list(circles),
            grid=grid,
            used_grid_completion=used_completion,
        )
