"""Circular Hough transform.

The paper refines the plate location by detecting the circular wells with
OpenCV's HoughCircles (Section 2.4).  This module implements the same idea on
numpy/scipy: edge pixels vote for circle centres at each candidate radius, and
local maxima of the accumulator above a vote threshold become detections.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np
from scipy import ndimage

__all__ = ["CircleDetection", "hough_circles"]


@dataclass(frozen=True)
class CircleDetection:
    """One detected circle."""

    x: float
    y: float
    radius: float
    votes: float

    def center(self) -> Tuple[float, float]:
        """The (x, y) centre of the circle."""
        return (self.x, self.y)


def _edge_map(gray: np.ndarray, threshold: float):
    """Binary edge map plus unit gradient directions from Sobel filtering.

    Returns ``(edges, unit_gx, unit_gy)`` where the unit gradients are only
    meaningful on edge pixels.
    """
    gx = ndimage.sobel(gray, axis=1, mode="nearest")
    gy = ndimage.sobel(gray, axis=0, mode="nearest")
    magnitude = np.hypot(gx, gy)
    if magnitude.max() <= 0:
        zeros = np.zeros_like(gray)
        return np.zeros_like(gray, dtype=bool), zeros, zeros
    edges = magnitude >= threshold * magnitude.max()
    safe = np.where(magnitude > 0, magnitude, 1.0)
    return edges, gx / safe, gy / safe


def _circle_support(
    edge_lookup: np.ndarray,
    cx: float,
    cy: float,
    radius: float,
    cos_a: np.ndarray,
    sin_a: np.ndarray,
) -> float:
    """Fraction of the circle perimeter that lies on (dilated) edge pixels.

    Straight edges (the plate border) produce Hough ridges whose candidate
    centres only have edge support over a narrow angular range; genuine wells
    are supported around most of the circle.  This is the same idea as the
    gradient-consistency check in OpenCV's HoughCircles.
    """
    height, width = edge_lookup.shape
    xs = np.rint(cx + radius * cos_a).astype(int)
    ys = np.rint(cy + radius * sin_a).astype(int)
    valid = (xs >= 0) & (xs < width) & (ys >= 0) & (ys < height)
    if not valid.any():
        return 0.0
    hits = edge_lookup[ys[valid], xs[valid]].sum()
    return float(hits) / float(len(cos_a))


def hough_circles(
    image: np.ndarray,
    radii: Sequence[float],
    *,
    edge_threshold: float = 0.25,
    vote_threshold: float = 0.45,
    min_distance: float = 18.0,
    min_support: float = 0.6,
    max_circles: Optional[int] = None,
    roi: Optional[Tuple[int, int, int, int]] = None,
) -> List[CircleDetection]:
    """Detect circles with radii in ``radii``.

    Parameters
    ----------
    image:
        sRGB ``(H, W, 3)`` or grayscale ``(H, W)`` frame.
    radii:
        Candidate radii in pixels (a handful is enough for well detection
        because the well size is known from the plate geometry).
    edge_threshold:
        Fraction of the maximum gradient magnitude above which a pixel is an
        edge pixel.
    vote_threshold:
        Fraction of the theoretical maximum votes (the number of perimeter
        samples) a centre must collect to count as a detection.
    min_distance:
        Minimum separation between reported centres (non-maximum suppression).
    min_support:
        Minimum fraction of the circle perimeter that must lie on edge pixels;
        filters the ridge artifacts that straight edges (the plate border)
        produce in the accumulator.
    max_circles:
        Optional cap on the number of detections (highest votes first).
    roi:
        Optional ``(x0, y0, x1, y1)`` region of interest; votes are only
        accumulated there (the paper restricts the search to the approximate
        plate area found from the fiducial marker).

    Returns
    -------
    Detections sorted by decreasing vote count.
    """
    gray = image.mean(axis=-1) if image.ndim == 3 else np.asarray(image, dtype=np.float64)
    height, width = gray.shape

    if roi is not None:
        x0, y0, x1, y1 = roi
        x0, y0 = max(int(x0), 0), max(int(y0), 0)
        x1, y1 = min(int(x1), width), min(int(y1), height)
        sub = gray[y0:y1, x0:x1]
    else:
        x0 = y0 = 0
        sub = gray

    edges, unit_gx, unit_gy = _edge_map(sub, edge_threshold)
    edge_ys, edge_xs = np.nonzero(edges)
    if edge_ys.size == 0:
        return []

    n_angles = 48
    angles = np.linspace(0.0, 2.0 * np.pi, n_angles, endpoint=False)
    cos_a, sin_a = np.cos(angles), np.sin(angles)

    sub_height, sub_width = sub.shape
    detections: List[CircleDetection] = []
    # Dilated edge map used for the perimeter-support check (1 px tolerance).
    edge_lookup = ndimage.binary_dilation(edges, iterations=1)

    # Gradient-direction voting (the OpenCV "Hough gradient" method): each
    # edge pixel votes only at +/- radius along its gradient, so the votes of
    # a circle's edge concentrate at its centre while straight edges and
    # interstitial geometry contribute almost nothing anywhere.
    pixel_gx = unit_gx[edge_ys, edge_xs]
    pixel_gy = unit_gy[edge_ys, edge_xs]

    for radius in radii:
        accumulator = np.zeros((sub_height, sub_width), dtype=np.float64)
        for sign in (1.0, -1.0):
            center_xs = np.rint(edge_xs + sign * radius * pixel_gx).astype(int)
            center_ys = np.rint(edge_ys + sign * radius * pixel_gy).astype(int)
            valid = (
                (center_xs >= 0)
                & (center_xs < sub_width)
                & (center_ys >= 0)
                & (center_ys < sub_height)
            )
            np.add.at(accumulator, (center_ys[valid], center_xs[valid]), 1.0)
        # Smooth so votes spread over adjacent pixels reinforce each other.
        accumulator = ndimage.gaussian_filter(accumulator, sigma=1.5)

        # A fully-supported circle contributes roughly its perimeter length in
        # votes, concentrated by the smoothing kernel.
        perimeter = 2.0 * np.pi * radius
        threshold = vote_threshold * perimeter / (2.0 * np.pi * 1.5**2)
        maxima = (accumulator == ndimage.maximum_filter(accumulator, size=int(max(min_distance, 3)))) & (
            accumulator >= threshold
        )
        ys, xs = np.nonzero(maxima)
        for cy, cx in zip(ys, xs):
            support = _circle_support(edge_lookup, float(cx), float(cy), radius, cos_a, sin_a)
            if support < min_support:
                continue
            detections.append(
                CircleDetection(
                    x=float(cx + x0),
                    y=float(cy + y0),
                    radius=float(radius),
                    votes=float(accumulator[cy, cx]) * support,
                )
            )

    # Cross-radius non-maximum suppression.
    detections.sort(key=lambda d: d.votes, reverse=True)
    kept: List[CircleDetection] = []
    for detection in detections:
        if all(
            (detection.x - other.x) ** 2 + (detection.y - other.y) ** 2 >= min_distance**2
            for other in kept
        ):
            kept.append(detection)
        if max_circles is not None and len(kept) >= max_circles:
            break
    return kept
