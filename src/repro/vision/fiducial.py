"""Square fiducial markers (stand-in for ArUco).

The paper stations the plate at a known distance from an ArUco marker and uses
the marker's detected size and position to find the approximate pixel
boundaries of the plate (Section 2.4).  This module provides the simulated
equivalent: a high-contrast square marker with a black border and a white
interior pattern, drawn into rendered frames and detected by intensity
thresholding plus connected-component analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
from scipy import ndimage

__all__ = ["generate_fiducial", "draw_fiducial", "detect_fiducial", "FiducialDetection"]

#: Interior pattern of the default marker (1 = white cell, 0 = black cell).
_DEFAULT_PATTERN = np.array(
    [
        [1, 0, 1, 0],
        [0, 1, 1, 0],
        [1, 1, 0, 1],
        [0, 0, 1, 1],
    ],
    dtype=np.uint8,
)


def generate_fiducial(size: int = 48, pattern: Optional[np.ndarray] = None) -> np.ndarray:
    """Return a ``size x size`` grayscale marker image (0 = black, 255 = white).

    The marker has a one-cell black border around an interior pattern, like a
    4x4 ArUco tag.
    """
    if size < 12:
        raise ValueError(f"marker size must be >= 12 pixels, got {size}")
    pattern = _DEFAULT_PATTERN if pattern is None else np.asarray(pattern, dtype=np.uint8)
    cells = pattern.shape[0] + 2  # interior plus a black border cell on each side
    grid = np.zeros((cells, cells), dtype=np.float64)
    grid[1:-1, 1:-1] = pattern * 255.0
    # Nearest-neighbour upsample to the requested pixel size.
    indices = (np.arange(size) * cells // size).clip(0, cells - 1)
    return grid[np.ix_(indices, indices)]


def draw_fiducial(image: np.ndarray, center: Tuple[float, float], size: int = 48) -> None:
    """Draw the marker (on a white backing patch) into ``image`` in place."""
    marker = generate_fiducial(size)
    cx, cy = center
    half = size // 2
    pad = max(size // 8, 3)
    height, width = image.shape[:2]
    y0, y1 = int(cy - half - pad), int(cy + half + pad)
    x0, x1 = int(cx - half - pad), int(cx + half + pad)
    y0c, y1c = max(y0, 0), min(y1, height)
    x0c, x1c = max(x0, 0), min(x1, width)
    image[y0c:y1c, x0c:x1c] = 255.0  # white backing so the black border has contrast
    my0, mx0 = int(cy - half), int(cx - half)
    my0c, mx0c = max(my0, 0), max(mx0, 0)
    my1c, mx1c = min(my0 + size, height), min(mx0 + size, width)
    image[my0c:my1c, mx0c:mx1c] = marker[
        my0c - my0 : my1c - my0, mx0c - mx0 : mx1c - mx0, None
    ]


@dataclass(frozen=True)
class FiducialDetection:
    """Result of locating the fiducial marker in a frame."""

    center: Tuple[float, float]
    size: float
    bbox: Tuple[int, int, int, int]  # (x0, y0, x1, y1) inclusive-exclusive

    @property
    def found(self) -> bool:
        """Whether a plausible marker was located."""
        return self.size > 0


def detect_fiducial(
    image: np.ndarray,
    *,
    dark_threshold: float = 90.0,
    min_size: int = 30,
    max_size: int = 160,
) -> FiducialDetection:
    """Locate the square marker in an sRGB or grayscale frame.

    The detector looks for the most square-like dark connected component whose
    bounding box falls within ``[min_size, max_size]`` pixels -- the marker's
    black border forms exactly such a component against its white backing.

    Returns a :class:`FiducialDetection` with ``size == 0`` when nothing
    plausible is found.
    """
    gray = image.mean(axis=-1) if image.ndim == 3 else np.asarray(image, dtype=np.float64)
    dark = gray < dark_threshold
    labels, count = ndimage.label(dark)
    if count == 0:
        return FiducialDetection(center=(0.0, 0.0), size=0.0, bbox=(0, 0, 0, 0))

    best: Optional[FiducialDetection] = None
    best_score = np.inf
    slices = ndimage.find_objects(labels)
    for index, slc in enumerate(slices, start=1):
        if slc is None:
            continue
        ys, xs = slc
        height = ys.stop - ys.start
        width = xs.stop - xs.start
        size = max(height, width)
        if size < min_size or size > max_size:
            continue
        aspect = max(height, width) / max(min(height, width), 1)
        if aspect > 1.4:
            continue
        component = labels[slc] == index
        fill = component.mean()
        # The marker border plus dark pattern cells fill roughly 40-80% of the
        # bounding box; solid blobs (plate shadows) fill ~100%.
        squareness_penalty = abs(aspect - 1.0)
        fill_penalty = abs(fill - 0.6)
        score = squareness_penalty + fill_penalty
        if score < best_score:
            best_score = score
            center = (
                float(xs.start + width / 2.0),
                float(ys.start + height / 2.0),
            )
            best = FiducialDetection(
                center=center,
                size=float(size),
                bbox=(int(xs.start), int(ys.start), int(xs.stop), int(ys.stop)),
            )
    if best is None:
        return FiducialDetection(center=(0.0, 0.0), size=0.0, bbox=(0, 0, 0, 0))
    return best
