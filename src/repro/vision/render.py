"""Synthetic camera frames of a microplate.

This module stands in for the physical webcam: given the simulated plate state
(which dyes are in which wells) and the chemistry model, it renders an sRGB
image containing

* a dark background (the camera's plate mount),
* a square fiducial marker at a fixed offset from the plate (the paper uses an
  ArUco marker at a known distance),
* the plate body with its 96 circular wells, each filled with the colour the
  mixing model predicts for its contents,
* realistic nuisances: small random translation/rotation of the plate (camera
  or mount shift), vignetting-style illumination gradient, and pixel noise.

The renderer also exposes the ground-truth pixel centre of every well so the
vision pipeline's accuracy can be measured directly in tests and benchmarks.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.color.mixing import MixingModel
from repro.hardware.labware import Plate
from repro.utils.rng import ensure_rng
from repro.vision.fiducial import draw_fiducial

__all__ = ["PlateImageConfig", "render_plate_image", "well_pixel_centers"]

# Per-config render caches.  The illumination gradient and the pixel
# coordinate axes depend only on the frame geometry, so they are computed once
# per (height, width, gradient) and reused across frames -- rendering is the
# dominant cost of a simulated campaign (one frame per run) and these were
# ~20% of every frame.  Cached arrays are marked read-only so a stray in-place
# op cannot corrupt later frames.
_RENDER_CACHE: Dict[tuple, tuple] = {}
_RENDER_CACHE_LOCK = threading.Lock()  # lock:render-cache
_SCRATCH = threading.local()


def _axes_and_gradient(height: int, width: int, gradient_strength: float):
    """Cached ``(ys, xs, gradient)`` for a frame geometry.

    ``ys``/``xs`` are the integer pixel axes (replacing the old full-frame
    ``np.mgrid``); ``gradient`` is the ``(H, W, 1)`` illumination field, or
    None when ``gradient_strength`` is zero.  Values are bit-identical to the
    2-D originals: broadcasting 1-D axes applies the same elementwise
    arithmetic to the same integers.
    """
    key = (height, width, gradient_strength)
    cached = _RENDER_CACHE.get(key)
    if cached is not None:
        return cached
    with _RENDER_CACHE_LOCK:
        cached = _RENDER_CACHE.get(key)
        if cached is not None:
            return cached
        ys = np.arange(height)
        xs = np.arange(width)
        if gradient_strength > 0:
            gx = np.abs(xs - width / 2) / (width / 2) * 0.5
            gy = np.abs(ys - height / 2) / (height / 2) * 0.5
            gradient = (1.0 - gradient_strength * (gx[None, :] + gy[:, None]))[..., None]
            gradient.setflags(write=False)
        else:
            gradient = None
        ys.setflags(write=False)
        xs.setflags(write=False)
        _RENDER_CACHE[key] = (ys, xs, gradient)
        return _RENDER_CACHE[key]


def _noise_scratch(shape: tuple) -> np.ndarray:
    """Thread-local reusable buffer for the per-frame pixel-noise draw."""
    buf = getattr(_SCRATCH, "noise", None)
    if buf is None or buf.shape != shape:
        buf = np.empty(shape, dtype=np.float64)
        _SCRATCH.noise = buf
    return buf


@dataclass(frozen=True)
class PlateImageConfig:
    """Geometry and noise parameters of the synthetic camera.

    All lengths are in pixels.  The defaults produce a 480x640 frame with a
    12x8 well grid at a 34-pixel pitch, comfortably resolvable by the Hough
    detector, and nuisance magnitudes similar to a fixed webcam with a ring
    light.
    """

    image_height: int = 480
    image_width: int = 640
    well_pitch: float = 34.0
    well_radius: float = 13.0
    plate_margin: float = 26.0
    plate_origin: Tuple[float, float] = (150.0, 130.0)  # (x, y) of well A1 nominal centre
    fiducial_size: int = 48
    fiducial_offset: Tuple[float, float] = (-110.0, -20.0)  # relative to plate origin
    background_rgb: Tuple[float, float, float] = (38.0, 40.0, 44.0)
    plate_body_rgb: Tuple[float, float, float] = (228.0, 228.0, 230.0)
    empty_well_rgb: Tuple[float, float, float] = (210.0, 212.0, 214.0)
    jitter_px: float = 3.0
    rotation_deg_sigma: float = 0.6
    illumination_gradient: float = 0.06
    pixel_noise_sigma: float = 2.0

    def nominal_center(self, row: int, col: int) -> Tuple[float, float]:
        """Nominal (x, y) pixel centre of the well at 0-based ``row``/``col``."""
        x0, y0 = self.plate_origin
        return (x0 + col * self.well_pitch, y0 + row * self.well_pitch)


def _transform_points(points: np.ndarray, offset: np.ndarray, angle_rad: float, pivot: np.ndarray) -> np.ndarray:
    """Rotate ``points`` about ``pivot`` and translate by ``offset``."""
    cos_a, sin_a = np.cos(angle_rad), np.sin(angle_rad)
    rotation = np.array([[cos_a, -sin_a], [sin_a, cos_a]])
    return (points - pivot) @ rotation.T + pivot + offset


def well_pixel_centers(
    plate: Plate,
    config: Optional[PlateImageConfig] = None,
    offset: Tuple[float, float] = (0.0, 0.0),
    rotation_deg: float = 0.0,
) -> Dict[str, Tuple[float, float]]:
    """Ground-truth pixel centre of every well after the given plate pose."""
    config = config if config is not None else PlateImageConfig()
    names = []
    nominal = []
    for name, row, col in plate.well_grid_positions():
        names.append(name)
        nominal.append(config.nominal_center(row, col))
    nominal_arr = np.asarray(nominal, dtype=np.float64)
    pivot = nominal_arr.mean(axis=0)
    moved = _transform_points(
        nominal_arr, np.asarray(offset, dtype=np.float64), np.radians(rotation_deg), pivot
    )
    return {name: (float(x), float(y)) for name, (x, y) in zip(names, moved)}


def render_plate_image(
    plate: Plate,
    chemistry: MixingModel,
    *,
    config: Optional[PlateImageConfig] = None,
    rng=None,
    return_truth: bool = False,
):
    """Render a synthetic sRGB frame of ``plate``.

    Parameters
    ----------
    plate:
        The simulated plate whose wells will be drawn.
    chemistry:
        Mixing model mapping each well's dye volumes to its true colour.
    config:
        Camera geometry/noise configuration.
    rng:
        Random source for the pose jitter and pixel noise.
    return_truth:
        When True, also return a dict with the sampled pose and the
        ground-truth well centres/colours (used by tests and the vision
        benchmark).

    Returns
    -------
    image:
        ``(H, W, 3)`` float64 array of sRGB values in [0, 255].
    truth (optional):
        ``{"offset", "rotation_deg", "centers", "colors"}``.
    """
    config = config if config is not None else PlateImageConfig()
    rng = ensure_rng(rng)

    height, width = config.image_height, config.image_width
    image = np.empty((height, width, 3), dtype=np.float64)
    image[:] = np.asarray(config.background_rgb)

    # Sample the plate pose for this frame.
    offset = rng.normal(0.0, config.jitter_px, size=2) if config.jitter_px > 0 else np.zeros(2)
    rotation_deg = rng.normal(0.0, config.rotation_deg_sigma) if config.rotation_deg_sigma > 0 else 0.0

    centers = well_pixel_centers(plate, config, offset=tuple(offset), rotation_deg=rotation_deg)

    # Plate body: bounding box of the (transformed) wells plus a margin.
    center_arr = np.asarray(list(centers.values()))
    min_xy = center_arr.min(axis=0) - config.plate_margin
    max_xy = center_arr.max(axis=0) + config.plate_margin
    x0, y0 = np.clip(min_xy.astype(int), 0, [width - 1, height - 1])
    x1, y1 = np.clip(np.ceil(max_xy).astype(int), 0, [width - 1, height - 1])
    image[y0 : y1 + 1, x0 : x1 + 1] = np.asarray(config.plate_body_rgb)

    # Fiducial marker (drawn relative to the *nominal* plate origin plus the
    # same translation: the marker is attached to the plate mount).
    marker_center = (
        config.plate_origin[0] + config.fiducial_offset[0] + offset[0],
        config.plate_origin[1] + config.fiducial_offset[1] + offset[1],
    )
    draw_fiducial(image, center=marker_center, size=config.fiducial_size)

    # Wells.  Patch coordinates come from cached 1-D axes broadcast together
    # -- same integers, same arithmetic as the old full-frame np.mgrid.
    ys, xs, gradient = _axes_and_gradient(height, width, config.illumination_gradient)
    dye_names = chemistry.dyes.names
    colors: Dict[str, np.ndarray] = {}
    r = config.well_radius
    r_sq = r**2
    for name, (cx, cy) in centers.items():
        well = plate.well(name)
        if well.is_empty:
            color = np.asarray(config.empty_well_rgb, dtype=np.float64)
        else:
            color = chemistry.mix(well.dye_volumes(dye_names))
        colors[name] = color
        # Only rasterise a small patch around the well for speed.
        px0, px1 = int(max(cx - r - 2, 0)), int(min(cx + r + 3, width))
        py0, py1 = int(max(cy - r - 2, 0)), int(min(cy + r + 3, height))
        mask = (xs[px0:px1][None, :] - cx) ** 2 + (ys[py0:py1][:, None] - cy) ** 2 <= r_sq
        image[py0:py1, px0:px1][mask] = color

    # Illumination gradient (ring light is slightly off-centre).
    if gradient is not None:
        image *= gradient

    # Pixel noise.  Drawn into a reusable scratch buffer and applied in place:
    # standard_normal(out=...) * sigma consumes the identical rng stream and
    # produces the identical values as normal(0, sigma, size=...).
    if config.pixel_noise_sigma > 0:
        noise = _noise_scratch(image.shape)
        rng.standard_normal(size=image.shape, dtype=np.float64, out=noise)
        noise *= config.pixel_noise_sigma
        image += noise

    np.clip(image, 0.0, 255.0, out=image)

    if return_truth:
        truth = {
            "offset": (float(offset[0]), float(offset[1])),
            "rotation_deg": float(rotation_deg),
            "centers": centers,
            "colors": {name: color.copy() for name, color in colors.items()},
        }
        return image, truth
    return image
