"""Computer-vision substrate for plate imaging.

The paper's image-processing step (Section 2.4) locates the microplate in a
webcam frame via an ArUco fiducial marker, finds the circular wells with
OpenCV's HoughCircles, completes missed detections by fitting a grid, and
reads the colour at each well centre.  This package reproduces that pipeline
from scratch on numpy/scipy:

* :mod:`repro.vision.render` -- renders a synthetic camera frame from the
  simulated plate state (stand-in for the physical webcam),
* :mod:`repro.vision.fiducial` -- square fiducial marker generation and
  detection (stand-in for ArUco),
* :mod:`repro.vision.hough` -- a circular Hough transform,
* :mod:`repro.vision.grid` -- well-grid fitting and completion,
* :mod:`repro.vision.extraction` -- the end-to-end well-colour extraction
  pipeline used by the application.
"""

from repro.vision.extraction import ExtractionResult, WellColorExtractor
from repro.vision.fiducial import FiducialDetection, detect_fiducial, generate_fiducial
from repro.vision.grid import GridFit, complete_grid, fit_well_grid
from repro.vision.hough import CircleDetection, hough_circles
from repro.vision.render import PlateImageConfig, render_plate_image, well_pixel_centers

__all__ = [
    "PlateImageConfig",
    "render_plate_image",
    "well_pixel_centers",
    "generate_fiducial",
    "detect_fiducial",
    "FiducialDetection",
    "hough_circles",
    "CircleDetection",
    "fit_well_grid",
    "complete_grid",
    "GridFit",
    "WellColorExtractor",
    "ExtractionResult",
]
