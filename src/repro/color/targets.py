"""Target colours for colour-matching experiments.

The paper's Figure 4 experiments all match a single mid-grey target,
RGB = (120, 120, 120).  The benchmark suite also exposes a small library of
other targets so the application can be exercised across the reachable gamut
(the Figure 3 campaign mixes a variety of colours across its 12 runs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

__all__ = ["TargetColor", "TARGET_COLORS", "get_target", "PAPER_TARGET"]


@dataclass(frozen=True)
class TargetColor:
    """A named target colour in 0-255 sRGB."""

    name: str
    rgb: Tuple[float, float, float]
    description: str = ""

    def as_array(self) -> np.ndarray:
        """Return the target as a float64 numpy array of shape (3,)."""
        return np.asarray(self.rgb, dtype=np.float64)

    def __post_init__(self):
        if len(self.rgb) != 3:
            raise ValueError("rgb must have three components")
        if any(not 0 <= channel <= 255 for channel in self.rgb):
            raise ValueError(f"rgb components must be in [0, 255], got {self.rgb}")


#: The target used for every experiment in the paper's Figure 4.
PAPER_TARGET = TargetColor(
    name="paper-grey",
    rgb=(120.0, 120.0, 120.0),
    description="Mid grey used for all batch-size experiments in the paper (Figure 4).",
)

TARGET_COLORS: Dict[str, TargetColor] = {
    target.name: target
    for target in [
        PAPER_TARGET,
        TargetColor("teal", (64.0, 150.0, 140.0), "Cyan-dominant mix."),
        TargetColor("plum", (150.0, 90.0, 140.0), "Magenta-dominant mix."),
        TargetColor("olive", (150.0, 150.0, 70.0), "Yellow-dominant mix."),
        TargetColor("charcoal", (70.0, 70.0, 70.0), "Dark grey; stresses the black dye."),
        TargetColor("sand", (200.0, 180.0, 140.0), "Light, low-dye-volume target."),
        TargetColor("rust", (170.0, 90.0, 60.0), "Requires magenta + yellow balance."),
        TargetColor("slate", (100.0, 110.0, 130.0), "Slightly blue grey."),
    ]
}


def get_target(name_or_rgb) -> TargetColor:
    """Resolve a target colour from a name, an ``(r, g, b)`` tuple or a TargetColor.

    Raises :class:`KeyError` for unknown names and :class:`ValueError` for
    malformed tuples.
    """
    if isinstance(name_or_rgb, TargetColor):
        return name_or_rgb
    if isinstance(name_or_rgb, str):
        try:
            return TARGET_COLORS[name_or_rgb]
        except KeyError:
            raise KeyError(
                f"unknown target {name_or_rgb!r}; available: {sorted(TARGET_COLORS)}"
            ) from None
    rgb = tuple(float(v) for v in name_or_rgb)
    return TargetColor(name=f"custom-{int(rgb[0])}-{int(rgb[1])}-{int(rgb[2])}", rgb=rgb)
