"""Colour science substrate.

The colour-picker application needs three colour-related capabilities:

* converting between colour spaces (the camera reports sRGB, the solvers are
  graded in CIELAB "delta E" distance per the paper's Section 2.5, Figure 4
  uses Euclidean distance in RGB space),
* measuring colour distances, and
* a forward model of how quantities of cyan / magenta / yellow / black dye
  mix into an observed colour (this replaces the physical chemistry; see
  DESIGN.md Section 2).

Everything operates on numpy arrays so whole plates (96 wells) can be
converted or scored in a single vectorised call.
"""

from repro.color.distance import (
    delta_e_cie76,
    delta_e_cie94,
    delta_e_ciede2000,
    euclidean_rgb,
    score_colors,
)
from repro.color.mixing import DyeSet, MixingModel, SubtractiveMixingModel
from repro.color.spaces import (
    lab_to_xyz,
    linear_to_srgb,
    rgb_to_lab,
    srgb_to_linear,
    xyz_to_lab,
    xyz_to_linear_rgb,
    linear_rgb_to_xyz,
    lab_to_rgb,
)
from repro.color.targets import TARGET_COLORS, TargetColor, get_target

__all__ = [
    "srgb_to_linear",
    "linear_to_srgb",
    "linear_rgb_to_xyz",
    "xyz_to_linear_rgb",
    "xyz_to_lab",
    "lab_to_xyz",
    "rgb_to_lab",
    "lab_to_rgb",
    "euclidean_rgb",
    "delta_e_cie76",
    "delta_e_cie94",
    "delta_e_ciede2000",
    "score_colors",
    "DyeSet",
    "MixingModel",
    "SubtractiveMixingModel",
    "TargetColor",
    "TARGET_COLORS",
    "get_target",
]
