"""Colour-distance metrics.

The paper grades solver proposals with a "delta e distance to the target"
(Section 2.5) while Figure 4 plots the Euclidean distance in three-dimensional
RGB colour space.  Both, plus the more perceptually uniform CIE94 and
CIEDE2000 formulas, are implemented here so the benchmark harness can use
whichever the experiment calls for.

All functions broadcast over leading axes: ``observed`` may be a single colour
``(3,)`` or a batch ``(n, 3)``; ``target`` may likewise be a single colour or a
batch compatible with ``observed``.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro.color.spaces import rgb_to_lab

__all__ = [
    "euclidean_rgb",
    "delta_e_cie76",
    "delta_e_cie94",
    "delta_e_ciede2000",
    "score_colors",
    "DISTANCE_METRICS",
]


def euclidean_rgb(observed, target) -> np.ndarray:
    """Euclidean distance in 0-255 RGB space (the Figure 4 y-axis)."""
    obs = np.asarray(observed, dtype=np.float64)
    tgt = np.asarray(target, dtype=np.float64)
    return np.linalg.norm(obs - tgt, axis=-1)


def delta_e_cie76(observed, target) -> np.ndarray:
    """CIE76 delta E: Euclidean distance in CIELAB space."""
    lab_obs = rgb_to_lab(observed)
    lab_tgt = rgb_to_lab(target)
    return np.linalg.norm(lab_obs - lab_tgt, axis=-1)


def delta_e_cie94(observed, target) -> np.ndarray:
    """CIE94 delta E (graphic-arts weighting)."""
    lab1 = rgb_to_lab(observed)
    lab2 = rgb_to_lab(target)
    dl = lab1[..., 0] - lab2[..., 0]
    c1 = np.hypot(lab1[..., 1], lab1[..., 2])
    c2 = np.hypot(lab2[..., 1], lab2[..., 2])
    dc = c1 - c2
    da = lab1[..., 1] - lab2[..., 1]
    db = lab1[..., 2] - lab2[..., 2]
    dh_sq = np.maximum(da**2 + db**2 - dc**2, 0.0)
    sl = 1.0
    sc = 1.0 + 0.045 * c1
    sh = 1.0 + 0.015 * c1
    return np.sqrt((dl / sl) ** 2 + (dc / sc) ** 2 + dh_sq / sh**2)


def delta_e_ciede2000(observed, target) -> np.ndarray:
    """CIEDE2000 delta E (the most perceptually uniform of the three)."""
    lab1 = rgb_to_lab(observed)
    lab2 = rgb_to_lab(target)
    l1, a1, b1 = lab1[..., 0], lab1[..., 1], lab1[..., 2]
    l2, a2, b2 = lab2[..., 0], lab2[..., 1], lab2[..., 2]

    c1 = np.hypot(a1, b1)
    c2 = np.hypot(a2, b2)
    c_bar = 0.5 * (c1 + c2)
    g = 0.5 * (1.0 - np.sqrt(c_bar**7 / (c_bar**7 + 25.0**7)))
    a1p = (1.0 + g) * a1
    a2p = (1.0 + g) * a2
    c1p = np.hypot(a1p, b1)
    c2p = np.hypot(a2p, b2)
    h1p = np.degrees(np.arctan2(b1, a1p)) % 360.0
    h2p = np.degrees(np.arctan2(b2, a2p)) % 360.0

    dlp = l2 - l1
    dcp = c2p - c1p

    dhp_raw = h2p - h1p
    dhp = np.where(np.abs(dhp_raw) <= 180.0, dhp_raw, dhp_raw - np.sign(dhp_raw) * 360.0)
    dhp = np.where((c1p * c2p) == 0.0, 0.0, dhp)
    dh_big = 2.0 * np.sqrt(c1p * c2p) * np.sin(np.radians(dhp) / 2.0)

    lbp = 0.5 * (l1 + l2)
    cbp = 0.5 * (c1p + c2p)

    hsum = h1p + h2p
    habs = np.abs(h1p - h2p)
    hbp = np.where(
        (c1p * c2p) == 0.0,
        hsum,
        np.where(
            habs <= 180.0,
            0.5 * hsum,
            np.where(hsum < 360.0, 0.5 * (hsum + 360.0), 0.5 * (hsum - 360.0)),
        ),
    )

    t = (
        1.0
        - 0.17 * np.cos(np.radians(hbp - 30.0))
        + 0.24 * np.cos(np.radians(2.0 * hbp))
        + 0.32 * np.cos(np.radians(3.0 * hbp + 6.0))
        - 0.20 * np.cos(np.radians(4.0 * hbp - 63.0))
    )
    dtheta = 30.0 * np.exp(-(((hbp - 275.0) / 25.0) ** 2))
    rc = 2.0 * np.sqrt(cbp**7 / (cbp**7 + 25.0**7))
    sl = 1.0 + 0.015 * (lbp - 50.0) ** 2 / np.sqrt(20.0 + (lbp - 50.0) ** 2)
    sc = 1.0 + 0.045 * cbp
    sh = 1.0 + 0.015 * cbp * t
    rt = -np.sin(np.radians(2.0 * dtheta)) * rc

    return np.sqrt(
        (dlp / sl) ** 2
        + (dcp / sc) ** 2
        + (dh_big / sh) ** 2
        + rt * (dcp / sc) * (dh_big / sh)
    )


DISTANCE_METRICS: Dict[str, Callable] = {
    "euclidean_rgb": euclidean_rgb,
    "delta_e_cie76": delta_e_cie76,
    "delta_e_cie94": delta_e_cie94,
    "delta_e_ciede2000": delta_e_ciede2000,
}


def score_colors(observed, target, metric: str = "euclidean_rgb") -> np.ndarray:
    """Score observed colours against a target with the named metric.

    ``metric`` must be one of :data:`DISTANCE_METRICS`.  Lower is better
    (a perfect match scores 0).
    """
    try:
        func = DISTANCE_METRICS[metric]
    except KeyError:
        raise ValueError(
            f"unknown distance metric {metric!r}; expected one of {sorted(DISTANCE_METRICS)}"
        ) from None
    return func(observed, target)
