"""Forward models of dye mixing.

The physical experiment dispenses volumes of cyan, magenta, yellow and black
dye into a well and the camera observes the resulting colour.  This module
provides the simulated replacement: a subtractive (Beer-Lambert-style) mixing
model that maps dye volumes to an sRGB colour.  The solvers treat the model as
a black box, exactly as the paper treats the physical chemistry (Section 2.5),
so any smooth non-linear map with the right dimensionality preserves the
optimisation problem; the Beer-Lambert form additionally gives physically
plausible colours for rendering plate images.

The model is deterministic; measurement noise is added separately by the
camera module so that repeated imaging of the same well gives slightly
different readings, as it would in the lab.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np
from scipy import optimize

from repro.utils.validation import check_positive

__all__ = ["DyeSet", "MixingModel", "SubtractiveMixingModel"]


@dataclass(frozen=True)
class DyeSet:
    """The set of component dyes available to the liquid handler.

    Each dye is described by its transmittance per unit relative
    concentration in the three sRGB channels: a value of 1.0 means the dye
    does not absorb that channel at all, a value near 0 means it absorbs the
    channel almost completely even at modest concentration.
    """

    names: Tuple[str, ...]
    transmittance: np.ndarray  # shape (n_dyes, 3), values in (0, 1]

    def __post_init__(self):
        trans = np.asarray(self.transmittance, dtype=np.float64)
        if trans.ndim != 2 or trans.shape[1] != 3:
            raise ValueError(f"transmittance must have shape (n_dyes, 3), got {trans.shape}")
        if len(self.names) != trans.shape[0]:
            raise ValueError(
                f"{len(self.names)} dye names but {trans.shape[0]} transmittance rows"
            )
        if np.any(trans <= 0.0) or np.any(trans > 1.0):
            raise ValueError("transmittance values must be in (0, 1]")
        object.__setattr__(self, "transmittance", trans)

    @property
    def n_dyes(self) -> int:
        """Number of component dyes."""
        return len(self.names)

    def index(self, name: str) -> int:
        """Return the position of dye ``name``."""
        try:
            return self.names.index(name)
        except ValueError:
            raise KeyError(f"unknown dye {name!r}; have {self.names}") from None

    @classmethod
    def cmyk(cls) -> "DyeSet":
        """The default cyan / magenta / yellow / black dye set used by the paper."""
        return cls(
            names=("cyan", "magenta", "yellow", "black"),
            transmittance=np.array(
                [
                    # R     G     B
                    [0.10, 0.75, 0.95],  # cyan absorbs red
                    [0.85, 0.12, 0.70],  # magenta absorbs green
                    [0.95, 0.85, 0.10],  # yellow absorbs blue
                    [0.22, 0.22, 0.22],  # black absorbs everything
                ]
            ),
        )

    @classmethod
    def cmy(cls) -> "DyeSet":
        """A three-dye variant (no black) for lower-dimensional experiments."""
        full = cls.cmyk()
        return cls(names=full.names[:3], transmittance=full.transmittance[:3])


class MixingModel:
    """Interface for forward models mapping dye volumes to observed colour."""

    @property
    def dyes(self) -> DyeSet:
        """The dye set this model mixes."""
        raise NotImplementedError

    def mix(self, volumes) -> np.ndarray:
        """Map dye volumes (µl) to an sRGB colour.

        ``volumes`` is either a single composition ``(n_dyes,)`` or a batch
        ``(n, n_dyes)``; the result has shape ``(3,)`` or ``(n, 3)``.
        """
        raise NotImplementedError

    def mix_ratios(self, ratios, total_volume: float) -> np.ndarray:
        """Mix relative ratios (which need not sum to 1) at a fixed total volume."""
        arr = np.asarray(ratios, dtype=np.float64)
        sums = arr.sum(axis=-1, keepdims=True)
        safe = np.where(sums <= 0, 1.0, sums)
        volumes = arr / safe * total_volume
        return self.mix(volumes)


@dataclass
class SubtractiveMixingModel(MixingModel):
    """Beer-Lambert-style subtractive mixing of the dye set in a well.

    The observed colour is ``white * prod_i T_i ** (strength * c_i)`` where
    ``c_i`` is the volume fraction of dye ``i`` in the well (relative to
    ``well_volume``) and ``T_i`` is the per-channel transmittance of the dye.
    Dye volumes beyond the well capacity saturate (the well overflows in the
    physical system; the simulated liquid handler refuses to dispense more
    than the capacity, but the model itself stays defined for robustness).

    Parameters
    ----------
    dye_set:
        The component dyes.  Defaults to the CMYK set used by the paper.
    well_volume:
        Reference liquid volume of a full well in µl (275 µl for the
        Corning-style 96-well plates used on the RPL workcell).
    strength:
        Absorbance scaling: how strongly a full well of a single dye absorbs.
    white_point:
        The sRGB colour observed for a well of pure diluent (paper plates are
        backlit by a ring light; slightly below pure white).
    """

    dye_set: DyeSet = field(default_factory=DyeSet.cmyk)
    well_volume: float = 275.0
    strength: float = 2.2
    white_point: Tuple[float, float, float] = (250.0, 250.0, 248.0)

    def __post_init__(self):
        check_positive("well_volume", self.well_volume)
        check_positive("strength", self.strength)
        self._white = np.asarray(self.white_point, dtype=np.float64)
        if self._white.shape != (3,):
            raise ValueError("white_point must be a 3-vector")

    @property
    def dyes(self) -> DyeSet:
        return self.dye_set

    @property
    def n_dyes(self) -> int:
        """Number of component dyes accepted by :meth:`mix`."""
        return self.dye_set.n_dyes

    def mix(self, volumes) -> np.ndarray:
        vols = np.asarray(volumes, dtype=np.float64)
        squeeze = vols.ndim == 1
        vols = np.atleast_2d(vols)
        if vols.shape[-1] != self.dye_set.n_dyes:
            raise ValueError(
                f"expected {self.dye_set.n_dyes} dye volumes, got shape {vols.shape}"
            )
        if np.any(vols < 0):
            raise ValueError("dye volumes must be non-negative")
        fractions = np.clip(vols / self.well_volume, 0.0, 1.0)
        # Optical density adds linearly; transmittance multiplies.
        log_trans = np.log(self.dye_set.transmittance)  # (n_dyes, 3)
        total_log = self.strength * fractions @ log_trans  # (n, 3)
        rgb = self._white * np.exp(total_log)
        rgb = np.clip(rgb, 0.0, 255.0)
        return rgb[0] if squeeze else rgb

    def gamut_extent(self, samples_per_axis: int = 5) -> Tuple[np.ndarray, np.ndarray]:
        """Return (min_rgb, max_rgb) reachable over a coarse grid of volumes.

        Useful for checking that a requested target colour is achievable at
        all before running an experiment.
        """
        axes = [np.linspace(0.0, self.well_volume, samples_per_axis)] * self.dye_set.n_dyes
        grid = np.stack(np.meshgrid(*axes, indexing="ij"), axis=-1).reshape(-1, self.dye_set.n_dyes)
        # Keep only compositions that fit in the well.
        grid = grid[grid.sum(axis=1) <= self.well_volume]
        colors = self.mix(grid)
        return colors.min(axis=0), colors.max(axis=0)

    def invert(self, target_rgb, total_volume: Optional[float] = None) -> np.ndarray:
        """Find dye volumes whose mixed colour best matches ``target_rgb``.

        This is the analytic solution the paper notes is possible "given
        accurate models of how colors combine" (Section 2.5).  It is used only
        by the oracle baseline in the solver-comparison benchmark; the real
        solvers never see the model.
        """
        target = np.asarray(target_rgb, dtype=np.float64)
        if total_volume is None:
            total_volume = self.well_volume
        n = self.dye_set.n_dyes

        def residual(x):
            volumes = np.clip(x, 0.0, total_volume)
            return self.mix(volumes) - target

        best = None
        best_cost = np.inf
        for start_scale in (0.1, 0.3, 0.6):
            x0 = np.full(n, total_volume * start_scale / n)
            result = optimize.least_squares(
                residual, x0, bounds=(np.zeros(n), np.full(n, total_volume))
            )
            if result.cost < best_cost:
                best_cost = result.cost
                best = result.x
        return np.clip(best, 0.0, total_volume)

    def describe(self) -> Dict[str, object]:
        """Return a JSON-serialisable description (stored in run records)."""
        return {
            "model": "subtractive",
            "dyes": list(self.dye_set.names),
            "well_volume_ul": self.well_volume,
            "strength": self.strength,
            "white_point": [float(v) for v in self._white],
        }
