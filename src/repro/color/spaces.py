"""Colour-space conversions.

All functions are vectorised: they accept arrays whose last axis has length 3
(``(..., 3)``) and return arrays of the same shape.  RGB values are in the
0-255 sRGB convention used throughout the paper (the target colour is
"RGB=(120,120,120)"); linear RGB and XYZ are in [0, 1]-ish ranges; CIELAB uses
the conventional L* in [0, 100].

The implementations follow the standard sRGB (IEC 61966-2-1) and CIE
definitions with the D65 reference white.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "srgb_to_linear",
    "linear_to_srgb",
    "linear_rgb_to_xyz",
    "xyz_to_linear_rgb",
    "xyz_to_lab",
    "lab_to_xyz",
    "rgb_to_lab",
    "lab_to_rgb",
]

# sRGB <-> XYZ matrices (D65 white point).
_RGB_TO_XYZ = np.array(
    [
        [0.4124564, 0.3575761, 0.1804375],
        [0.2126729, 0.7151522, 0.0721750],
        [0.0193339, 0.1191920, 0.9503041],
    ]
)
_XYZ_TO_RGB = np.linalg.inv(_RGB_TO_XYZ)

# D65 reference white in XYZ.
_WHITE_D65 = np.array([0.95047, 1.00000, 1.08883])

# CIELAB constants.
_EPSILON = 216.0 / 24389.0
_KAPPA = 24389.0 / 27.0


def _as_float(values) -> np.ndarray:
    arr = np.asarray(values, dtype=np.float64)
    if arr.shape[-1] != 3:
        raise ValueError(f"expected last axis of length 3, got shape {arr.shape}")
    return arr


def srgb_to_linear(rgb) -> np.ndarray:
    """Convert 0-255 sRGB values to linear RGB in [0, 1]."""
    srgb = _as_float(rgb) / 255.0
    srgb = np.clip(srgb, 0.0, 1.0)
    return np.where(srgb <= 0.04045, srgb / 12.92, ((srgb + 0.055) / 1.055) ** 2.4)


def linear_to_srgb(linear) -> np.ndarray:
    """Convert linear RGB in [0, 1] to 0-255 sRGB values."""
    lin = np.clip(_as_float(linear), 0.0, 1.0)
    srgb = np.where(lin <= 0.0031308, lin * 12.92, 1.055 * np.power(lin, 1.0 / 2.4) - 0.055)
    return srgb * 255.0


def linear_rgb_to_xyz(linear) -> np.ndarray:
    """Convert linear RGB to CIE XYZ (D65)."""
    lin = _as_float(linear)
    return lin @ _RGB_TO_XYZ.T


def xyz_to_linear_rgb(xyz) -> np.ndarray:
    """Convert CIE XYZ (D65) to linear RGB."""
    values = _as_float(xyz)
    return values @ _XYZ_TO_RGB.T


def xyz_to_lab(xyz) -> np.ndarray:
    """Convert CIE XYZ (D65) to CIELAB."""
    values = _as_float(xyz) / _WHITE_D65
    f = np.where(values > _EPSILON, np.cbrt(values), (_KAPPA * values + 16.0) / 116.0)
    lightness = 116.0 * f[..., 1] - 16.0
    a_axis = 500.0 * (f[..., 0] - f[..., 1])
    b_axis = 200.0 * (f[..., 1] - f[..., 2])
    return np.stack([lightness, a_axis, b_axis], axis=-1)


def lab_to_xyz(lab) -> np.ndarray:
    """Convert CIELAB to CIE XYZ (D65)."""
    values = _as_float(lab)
    fy = (values[..., 0] + 16.0) / 116.0
    fx = fy + values[..., 1] / 500.0
    fz = fy - values[..., 2] / 200.0

    def _finv(f, for_y=False, lightness=None):
        cube = f**3
        if for_y:
            return np.where(lightness > _KAPPA * _EPSILON, cube, lightness / _KAPPA)
        return np.where(cube > _EPSILON, cube, (116.0 * f - 16.0) / _KAPPA)

    x = _finv(fx)
    y = _finv(fy, for_y=True, lightness=values[..., 0])
    z = _finv(fz)
    return np.stack([x, y, z], axis=-1) * _WHITE_D65


def rgb_to_lab(rgb) -> np.ndarray:
    """Convert 0-255 sRGB values to CIELAB."""
    return xyz_to_lab(linear_rgb_to_xyz(srgb_to_linear(rgb)))


def lab_to_rgb(lab) -> np.ndarray:
    """Convert CIELAB to 0-255 sRGB values (clipped to the gamut)."""
    return linear_to_srgb(xyz_to_linear_rgb(lab_to_xyz(lab)))
