"""The flight recorder: a bounded ring of recent spans and events.

When something dies -- a :class:`~repro.wei.drivers.base.CompletionTimeout`,
a soak invariant break, a failing test -- the question is always "what was
happening just before?".  The recorder answers it: while observability is
installed, every finished span (fed by the tracer) and every explicit
:meth:`FlightRecorder.note` lands in a fixed-capacity ring, and
:func:`flight_dump` snapshots the ring to a JSON artifact at the moment of
failure.

Dump triggers (the protocol, see ``docs/observability.md``):

* ``CompletionTimeout`` -- the completion bridge calls :func:`flight_dump`
  at the raise site;
* soak invariant breaks -- :func:`repro.wei.chaos.soak.run_soak` dumps per
  broken seed into its log directory;
* failing tests -- the root ``conftest.py`` extends the
  ``REPRO_PORTAL_ARTIFACTS`` hook to copy the active recorder's dump next
  to the failing test's portal stores.

The dump directory resolves, in order: the explicit ``directory``
argument, the ``REPRO_OBS_FLIGHT_DIR`` environment variable, else the
dump is kept in memory only (:attr:`FlightRecorder.last_dump`) for a
supervising layer (the conftest hook) to write.

Ring appends are ``deque.append`` on a bounded deque -- atomic under the
GIL -- so recording takes no locks and adds no lock-order edges.
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from pathlib import Path
from typing import Any, Deque, Dict, List, Optional

from repro.obs import tracer as _tracer_module
from repro.obs.tracer import Span

__all__ = [
    "FLIGHT_DIR_ENV",
    "FlightRecorder",
    "active",
    "install",
    "uninstall",
    "note",
    "flight_dump",
]

#: Environment variable naming the directory crash dumps are written to.
FLIGHT_DIR_ENV = "REPRO_OBS_FLIGHT_DIR"

#: Default ring capacity (most recent spans/events kept).
DEFAULT_CAPACITY = 4096


class FlightRecorder:
    """Fixed-capacity ring of the most recent spans and events."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._ring: Deque[Dict[str, Any]] = deque(maxlen=self.capacity)
        self.dumps = 0
        #: The most recent dump document (kept even when nothing was written).
        self.last_dump: Optional[Dict[str, Any]] = None

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_span(self, span: Span) -> None:
        """The tracer's sink: every finished span enters the ring."""
        entry = span.to_dict()
        entry["kind"] = "span"
        self._ring.append(entry)

    def note(self, event: str, **data: Any) -> None:
        """Record a free-form event (invariant diffs, operator notes)."""
        self._ring.append({"kind": "event", "event": event, "wall": time.monotonic(), **data})

    def snapshot(self) -> List[Dict[str, Any]]:
        """The ring's current contents, oldest first."""
        return list(self._ring)

    def __len__(self) -> int:
        return len(self._ring)

    # ------------------------------------------------------------------
    # Dumping
    # ------------------------------------------------------------------
    def dump(
        self,
        reason: str,
        *,
        directory: Optional[Path] = None,
        context: Optional[Dict[str, Any]] = None,
    ) -> Optional[Path]:
        """Snapshot the ring as a JSON artifact.

        Returns the written path, or ``None`` when no directory was given
        and :data:`FLIGHT_DIR_ENV` is unset -- the document is still kept
        in :attr:`last_dump` either way.
        """
        self.dumps += 1
        document = {
            "reason": reason,
            "dumped_wall": time.monotonic(),
            "context": dict(context or {}),
            "capacity": self.capacity,
            "events": self.snapshot(),
        }
        self.last_dump = document
        if directory is None:
            env_dir = os.environ.get(FLIGHT_DIR_ENV)
            if env_dir:
                directory = Path(env_dir)
        if directory is None:
            return None
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        safe_reason = "".join(ch if ch.isalnum() or ch in "-_" else "-" for ch in reason)
        path = directory / f"flight-{safe_reason}-{self.dumps}.json"
        path.write_text(json.dumps(document, indent=2, default=str) + "\n", encoding="utf-8")
        return path


# ---------------------------------------------------------------------------
# Module-level activation (mirrors the tracer's switch)
# ---------------------------------------------------------------------------

_active: Optional[FlightRecorder] = None


def active() -> Optional[FlightRecorder]:
    """The installed recorder, or ``None``."""
    return _active


def install(recorder: Optional[FlightRecorder] = None) -> FlightRecorder:
    """Install ``recorder`` (or a fresh one) and, when a tracer is active,
    subscribe it to finished spans."""
    global _active
    if recorder is None:
        recorder = FlightRecorder()
    _active = recorder
    tracer = _tracer_module.active()
    if tracer is not None and recorder.record_span not in tracer._sinks:
        tracer._sinks.append(recorder.record_span)
    return recorder


def uninstall() -> Optional[FlightRecorder]:
    """Deactivate the recorder and detach it from the tracer."""
    global _active
    recorder = _active
    _active = None
    tracer = _tracer_module.active()
    if tracer is not None and recorder is not None:
        try:
            tracer._sinks.remove(recorder.record_span)
        except ValueError:
            pass
    return recorder


def note(event: str, **data: Any) -> None:
    """Record an event on the active recorder; no-op when none."""
    recorder = _active
    if recorder is None:
        return
    recorder.note(event, **data)


def flight_dump(
    reason: str,
    *,
    directory: Optional[Path] = None,
    **context: Any,
) -> Optional[Path]:
    """Dump the active recorder's ring; no-op (returns ``None``) when off."""
    recorder = _active
    if recorder is None:
        return None
    return recorder.dump(reason, directory=directory, context=context)
