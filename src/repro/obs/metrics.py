"""The process-wide metrics registry: counters, gauges, histograms.

Every layer's ad-hoc counters (``WireStats``, ``BridgeStats``, chaos
injections, portal fsyncs, shard queue waits) are re-homed here: the
component creates its handles once at construction via
:func:`get_registry` and keeps its existing public accessors as thin
views over the handle values.  ``python -m repro metrics`` renders the
registry as JSON or Prometheus text.

Threading model
---------------

Counter/gauge/histogram **mutation is not internally locked**: each
handle is owned by exactly one component and mutated under that
component's own lock (the wire transport's condition, the bridge's
condition, the store lock), exactly as the plain integer attributes they
replace were.  Re-homing therefore adds no locks to any hot path and no
new edges to the lock-order graph from component locks.  The registry's
own lock (role ``"obs-metrics"``, via
:func:`repro.analysis.runtime.make_lock`) only guards the metric-family
dict during get-or-create and snapshot iteration.

Naming scheme (see ``docs/observability.md``): ``<layer>_<noun>_<unit>``
with Prometheus conventions -- monotonic counters end in ``_total``,
histograms carry their unit suffix (``_s`` for seconds).  Components with
several live instances (one wire transport per module per shard)
disambiguate with an ``instance`` label from :func:`next_instance`.
"""

from __future__ import annotations

import itertools
import math
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.analysis.runtime import make_lock

__all__ = [
    "REGISTRY_LOCK_ROLE",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "reset_registry",
    "next_instance",
]

#: Lock-order-graph role name of the registry's family-dict lock.
REGISTRY_LOCK_ROLE = "obs-metrics"

#: Observations a histogram keeps for percentile estimates (count/sum are
#: exact forever; percentiles are over this recent window).
HISTOGRAM_WINDOW = 4096

_instance_ids = itertools.count(1)


def next_instance() -> str:
    """A process-unique instance label for per-component metric series."""
    return str(next(_instance_ids))


_LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Optional[Dict[str, str]]) -> _LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in (labels or {}).items()))


class _Metric:
    """Shared identity: a name plus a frozen label set."""

    kind = "metric"

    def __init__(self, name: str, labels: Optional[Dict[str, str]] = None) -> None:
        self.name = name
        self.labels: Dict[str, str] = {str(k): str(v) for k, v in (labels or {}).items()}

    def value_dict(self) -> Dict[str, Any]:
        raise NotImplementedError

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "kind": self.kind, "labels": dict(self.labels), **self.value_dict()}


class Counter(_Metric):
    """Monotonically increasing count; mutate only under the owning lock."""

    kind = "counter"

    def __init__(self, name: str, labels: Optional[Dict[str, str]] = None) -> None:
        super().__init__(name, labels)
        self._value = 0.0

    def inc(self, value: float = 1.0) -> None:
        if value < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc {value})")
        self._value += value

    @property
    def value(self) -> float:
        return self._value

    def value_dict(self) -> Dict[str, Any]:
        return {"value": self._value}


class Gauge(_Metric):
    """A point-in-time value; mutate only under the owning lock."""

    kind = "gauge"

    def __init__(self, name: str, labels: Optional[Dict[str, str]] = None) -> None:
        super().__init__(name, labels)
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, value: float = 1.0) -> None:
        self._value += value

    def dec(self, value: float = 1.0) -> None:
        self._value -= value

    @property
    def value(self) -> float:
        return self._value

    def value_dict(self) -> Dict[str, Any]:
        return {"value": self._value}


class Histogram(_Metric):
    """Distribution with exact count/sum and windowed percentiles.

    The window (:data:`HISTOGRAM_WINDOW` most recent observations) bounds
    memory over long soaks; p50/p95 are therefore *recent* percentiles,
    which is what a fleet-status column wants anyway.  Two explicitly
    labelled time scopes are exposed so they are never mixed by accident:
    *lifetime* aggregates (:attr:`count`, :attr:`sum`, :attr:`mean`,
    observed max) cover every observation ever made, while *windowed*
    statistics (:attr:`window_count`, :attr:`window_mean`,
    :meth:`percentile`) cover only the recent window -- status tables that
    show percentiles should show :attr:`window_mean` beside them, so every
    latency column describes the same observations.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: Optional[Dict[str, str]] = None,
        *,
        window: int = HISTOGRAM_WINDOW,
    ) -> None:
        super().__init__(name, labels)
        if window < 1:
            raise ValueError(f"histogram window must be >= 1, got {window}")
        self._recent: Deque[float] = deque(maxlen=window)
        self._count = 0
        self._sum = 0.0
        self._max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        self._recent.append(value)
        self._count += 1
        self._sum += value
        if value > self._max:
            self._max = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> Optional[float]:
        """Lifetime mean (every observation ever made; see class docstring)."""
        return self._sum / self._count if self._count else None

    @property
    def window_count(self) -> int:
        """Observations currently inside the recent window."""
        return len(self._recent)

    @property
    def window_mean(self) -> Optional[float]:
        """Mean over the recent window -- same scope as :meth:`percentile`."""
        if not self._recent:
            return None
        return sum(self._recent) / len(self._recent)

    def percentile(self, fraction: float) -> Optional[float]:
        """Nearest-rank percentile over the recent window (``0 < f <= 1``)."""
        if not (0.0 < fraction <= 1.0):
            raise ValueError(f"percentile fraction must be in (0, 1], got {fraction}")
        values = sorted(self._recent)
        if not values:
            return None
        rank = max(int(math.ceil(fraction * len(values))) - 1, 0)
        return values[rank]

    def value_dict(self) -> Dict[str, Any]:
        # count/sum/mean/max are lifetime; window_count/window_mean/p50/p95
        # share the bounded recent window (see class docstring).
        return {
            "count": self._count,
            "sum": self._sum,
            "mean": self.mean,
            "max": self._max if self._count else None,
            "window_count": self.window_count,
            "window_mean": self.window_mean,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
        }


class MetricsRegistry:
    """Get-or-create registry of metric handles keyed ``(name, labels)``.

    ``counter``/``gauge``/``histogram`` return the existing handle when the
    exact name+labels pair was seen before (Prometheus semantics), so two
    components sharing a series also share its value -- components that
    must not share pass an ``instance`` label from :func:`next_instance`.
    """

    def __init__(self) -> None:
        self._lock = make_lock(REGISTRY_LOCK_ROLE)
        self._metrics: Dict[Tuple[str, _LabelKey], _Metric] = {}

    def _get_or_create(self, cls: type, name: str, labels: Optional[Dict[str, str]],
                       **kwargs: Any) -> _Metric:
        key = (name, _label_key(labels))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = cls(name, labels, **kwargs)
                self._metrics[key] = metric
            elif not isinstance(metric, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {metric.kind}, "
                    f"not {cls.kind}"  # type: ignore[attr-defined]
                )
        return metric

    def counter(self, name: str, labels: Optional[Dict[str, str]] = None) -> Counter:
        metric = self._get_or_create(Counter, name, labels)
        assert isinstance(metric, Counter)
        return metric

    def gauge(self, name: str, labels: Optional[Dict[str, str]] = None) -> Gauge:
        metric = self._get_or_create(Gauge, name, labels)
        assert isinstance(metric, Gauge)
        return metric

    def histogram(
        self,
        name: str,
        labels: Optional[Dict[str, str]] = None,
        *,
        window: int = HISTOGRAM_WINDOW,
    ) -> Histogram:
        metric = self._get_or_create(Histogram, name, labels, window=window)
        assert isinstance(metric, Histogram)
        return metric

    def metrics(self) -> List[_Metric]:
        """All registered handles, sorted by ``(name, labels)``."""
        with self._lock:
            items = sorted(self._metrics.items(), key=lambda item: item[0])
        return [metric for _, metric in items]

    def snapshot(self) -> List[Dict[str, Any]]:
        """JSON-serialisable dump of every metric's current state."""
        return [metric.to_dict() for metric in self.metrics()]

    def to_json(self) -> Dict[str, Any]:
        """The ``python -m repro metrics --format json`` document."""
        return {"metrics": self.snapshot()}

    def render_prometheus(self) -> str:
        """Prometheus text exposition of the registry.

        Counters/gauges render natively; histograms render their exact
        aggregates (``_count``/``_sum``) plus the windowed ``p50``/``p95``
        as quantile-labelled summary samples.
        """
        lines: List[str] = []
        seen_types: Dict[str, str] = {}
        for metric in self.metrics():
            prom_type = {"counter": "counter", "gauge": "gauge", "histogram": "summary"}[metric.kind]
            if seen_types.get(metric.name) != prom_type:
                lines.append(f"# TYPE {metric.name} {prom_type}")
                seen_types[metric.name] = prom_type
            if isinstance(metric, (Counter, Gauge)):
                lines.append(f"{metric.name}{_prom_labels(metric.labels)} {_prom_value(metric.value)}")
            elif isinstance(metric, Histogram):
                base = metric.labels
                lines.append(f"{metric.name}_count{_prom_labels(base)} {metric.count}")
                lines.append(f"{metric.name}_sum{_prom_labels(base)} {_prom_value(metric.sum)}")
                for quantile, value in (("0.5", metric.percentile(0.50)), ("0.95", metric.percentile(0.95))):
                    if value is None:
                        continue
                    labels = dict(base)
                    labels["quantile"] = quantile
                    lines.append(f"{metric.name}{_prom_labels(labels)} {_prom_value(value)}")
        return "\n".join(lines) + ("\n" if lines else "")


def _prom_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    parts = []
    for key, value in sorted(labels.items()):
        escaped = value.replace("\\", "\\\\").replace('"', '\\"')
        parts.append(f'{key}="{escaped}"')
    return "{" + ",".join(parts) + "}"


def _prom_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


_default = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry components bind their handles to."""
    return _default


def reset_registry() -> MetricsRegistry:
    """Swap in a fresh default registry (tests); components built *after*
    the reset bind to the new one, existing handles keep the old."""
    global _default
    _default = MetricsRegistry()
    return _default
