"""Trace export and analysis: Chrome trace-event JSON and summaries.

:func:`write_chrome_trace` serialises collected spans as Chrome
trace-event JSON (the ``traceEvents`` array format) loadable in Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing``: each span becomes a
complete (``"X"``) event on its recording thread's track, thread-name
metadata events label the tracks, and parent→child links that cross
threads are emitted as flow events (``"s"``/``"f"``) so Perfetto draws
the causal arrows -- campaign → run → action → wire retry → bridge
delivery -- across the engine loop, the wire reader, and the device
worker tracks.

Span identity (``span_id``/``parent_id``), dual timestamps
(``sim_start``/``sim_end``) and attributes ride in each event's ``args``,
which makes the file self-contained: :func:`load_trace` rebuilds the span
tree from the exported file alone, and :func:`summarise_trace` (behind
``python -m repro trace``) reports per-stage latency percentiles and the
critical path of the slowest run.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

from repro.obs.tracer import Span

__all__ = [
    "chrome_trace_events",
    "write_chrome_trace",
    "load_trace",
    "summarise_trace",
    "render_summary",
]

_SpanLike = Union[Span, Dict[str, Any]]


def _as_dict(span: _SpanLike) -> Dict[str, Any]:
    return span.to_dict() if isinstance(span, Span) else dict(span)


def chrome_trace_events(spans: Iterable[_SpanLike]) -> List[Dict[str, Any]]:
    """The ``traceEvents`` array for ``spans`` (closed spans only)."""
    rows = [_as_dict(span) for span in spans]
    rows = [row for row in rows if row.get("end_wall") is not None]
    if not rows:
        return []
    epoch = min(row["start_wall"] for row in rows)
    by_id = {row["span_id"]: row for row in rows}
    events: List[Dict[str, Any]] = []
    named_threads: Dict[int, str] = {}
    for row in rows:
        tid = row["thread_id"]
        if tid not in named_threads:
            named_threads[tid] = row["thread_name"]
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": 1,
                    "tid": tid,
                    "args": {"name": row["thread_name"]},
                }
            )
        start_us = (row["start_wall"] - epoch) * 1e6
        duration_us = max((row["end_wall"] - row["start_wall"]) * 1e6, 0.0)
        args = dict(row.get("attrs") or {})
        args["span_id"] = row["span_id"]
        args["parent_id"] = row.get("parent_id")
        args["status"] = row.get("status", "ok")
        if row.get("start_sim") is not None:
            args["sim_start"] = row["start_sim"]
        if row.get("end_sim") is not None:
            args["sim_end"] = row["end_sim"]
        events.append(
            {
                "ph": "X",
                "name": row["name"],
                "cat": "repro",
                "pid": 1,
                "tid": tid,
                "ts": start_us,
                "dur": duration_us,
                "args": args,
            }
        )
        parent = by_id.get(row.get("parent_id"))
        if parent is not None and parent["thread_id"] != tid:
            # Cross-thread causality: a flow arrow from the parent span's
            # start to this span's start.
            flow_ts = (parent["start_wall"] - epoch) * 1e6
            events.append(
                {
                    "ph": "s",
                    "id": row["span_id"],
                    "name": "causality",
                    "cat": "flow",
                    "pid": 1,
                    "tid": parent["thread_id"],
                    "ts": flow_ts,
                }
            )
            events.append(
                {
                    "ph": "f",
                    "bp": "e",
                    "id": row["span_id"],
                    "name": "causality",
                    "cat": "flow",
                    "pid": 1,
                    "tid": tid,
                    "ts": start_us,
                }
            )
    return events


def write_chrome_trace(
    spans: Iterable[_SpanLike],
    path: Path,
    *,
    metadata: Optional[Dict[str, Any]] = None,
) -> Path:
    """Write ``spans`` as a Perfetto-loadable Chrome trace JSON file."""
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    document = {
        "traceEvents": chrome_trace_events(spans),
        "displayTimeUnit": "ms",
        "metadata": dict(metadata or {}),
    }
    path.write_text(json.dumps(document, default=str) + "\n", encoding="utf-8")
    return path


def load_trace(path: Path) -> List[Dict[str, Any]]:
    """Rebuild span dicts from an exported Chrome trace file."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    events = data.get("traceEvents", data if isinstance(data, list) else [])
    thread_names: Dict[int, str] = {}
    for entry in events:
        if entry.get("ph") == "M" and entry.get("name") == "thread_name":
            thread_names[entry.get("tid", 0)] = entry.get("args", {}).get("name", "")
    spans = []
    for entry in events:
        if entry.get("ph") != "X":
            continue
        args = dict(entry.get("args") or {})
        span_id = args.pop("span_id", None)
        parent_id = args.pop("parent_id", None)
        status = args.pop("status", "ok")
        sim_start = args.pop("sim_start", None)
        sim_end = args.pop("sim_end", None)
        start = float(entry.get("ts", 0.0)) / 1e6
        duration = float(entry.get("dur", 0.0)) / 1e6
        spans.append(
            {
                "span_id": span_id,
                "parent_id": parent_id,
                "name": entry.get("name", ""),
                "thread_id": entry.get("tid", 0),
                "thread_name": thread_names.get(entry.get("tid", 0), ""),
                "start_wall": start,
                "end_wall": start + duration,
                "start_sim": sim_start,
                "end_sim": sim_end,
                "status": status,
                "attrs": args,
            }
        )
    return spans


def _percentile(values: Sequence[float], fraction: float) -> float:
    ordered = sorted(values)
    rank = max(int(math.ceil(fraction * len(ordered))) - 1, 0)
    return ordered[rank]


def summarise_trace(spans: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Per-stage latency percentiles plus the slowest run's critical path.

    Stages are span names; the critical path starts at the longest
    ``run`` span (falling back to the longest span of any name) and
    greedily descends into the longest child at each level -- the chain a
    latency investigation should read first.
    """
    stages: Dict[str, List[float]] = {}
    children: Dict[Any, List[Dict[str, Any]]] = {}
    for row in spans:
        if row.get("end_wall") is None:
            continue
        stages.setdefault(row["name"], []).append(row["end_wall"] - row["start_wall"])
        children.setdefault(row.get("parent_id"), []).append(row)

    stage_summary = {
        name: {
            "count": len(durations),
            "p50_s": _percentile(durations, 0.50),
            "p95_s": _percentile(durations, 0.95),
            "max_s": max(durations),
            "total_s": sum(durations),
        }
        for name, durations in sorted(stages.items())
    }

    def duration(row: Dict[str, Any]) -> float:
        return row["end_wall"] - row["start_wall"]

    runs = [row for row in spans if row.get("name") == "run" and row.get("end_wall") is not None]
    pool = runs or [row for row in spans if row.get("end_wall") is not None]
    critical_path: List[Dict[str, Any]] = []
    if pool:
        node: Optional[Dict[str, Any]] = max(pool, key=duration)
        seen = set()
        while node is not None and node["span_id"] not in seen:
            seen.add(node["span_id"])
            critical_path.append(
                {
                    "name": node["name"],
                    "span_id": node["span_id"],
                    "thread_name": node.get("thread_name", ""),
                    "duration_s": duration(node),
                    "attrs": dict(node.get("attrs") or {}),
                }
            )
            kids = [kid for kid in children.get(node["span_id"], []) if kid.get("end_wall") is not None]
            node = max(kids, key=duration) if kids else None

    threads = sorted({row.get("thread_name", "") for row in spans if row.get("end_wall") is not None})
    return {
        "n_spans": sum(len(values) for values in stages.values()),
        "n_threads": len(threads),
        "threads": threads,
        "stages": stage_summary,
        "critical_path": critical_path,
    }


def render_summary(summary: Dict[str, Any]) -> str:
    """Human-readable form of :func:`summarise_trace` for the CLI."""
    lines = [
        f"{summary['n_spans']} span(s) across {summary['n_threads']} thread(s): "
        + ", ".join(summary["threads"])
    ]
    lines.append("")
    lines.append(f"{'stage':<24} {'count':>7} {'p50':>12} {'p95':>12} {'max':>12} {'total':>12}")
    for name, stats in summary["stages"].items():
        lines.append(
            f"{name:<24} {stats['count']:>7} "
            f"{stats['p50_s'] * 1e3:>10.3f}ms {stats['p95_s'] * 1e3:>10.3f}ms "
            f"{stats['max_s'] * 1e3:>10.3f}ms {stats['total_s'] * 1e3:>10.3f}ms"
        )
    lines.append("")
    lines.append("critical path of the slowest run:")
    for depth, hop in enumerate(summary["critical_path"]):
        label = ", ".join(f"{k}={v}" for k, v in hop["attrs"].items() if k in ("module", "action", "job_index", "seq", "kind", "ticket_id"))
        suffix = f" ({label})" if label else ""
        lines.append(
            f"{'  ' * depth}- {hop['name']} {hop['duration_s'] * 1e3:.3f}ms "
            f"on {hop['thread_name']}{suffix}"
        )
    return "\n".join(lines)
