"""Causal span tracing with per-thread buffers and a central collector.

The tracer answers "where did run 4123's action spend its time?" by
recording **spans** -- named intervals carrying dual timestamps (wall
monotonic *and* simulated clock time where the caller has one), thread
identity, and parent/child causality -- end-to-end across the stack:
campaign → run → step → action submit/complete → wire frame/retry/resync →
completion-bridge post/deliver → portal ingest.  One trace therefore shows
a run's full causal tree even though its spans land on several OS threads
(engine loop, wire reader, device worker, paced-mock worker).

Activation mirrors :mod:`repro.analysis.runtime`: a module-level
``_active`` tracer that is ``None`` by default.  Every instrumentation
site goes through :func:`span` / :func:`event` / :func:`bound`, whose
disabled fast path is a single global read plus a shared no-op context
manager -- no allocation, no locking -- so tracing off costs near zero
(the ``obs`` bench area measures and gates this).

Concurrency design (see ``docs/observability.md``):

* span *recording* is lock-free: each thread appends finished spans to its
  own buffer (``list.append`` is atomic under the GIL) and only the
  *drain* takes the collector lock (role ``"obs-collector"``, built via
  :func:`repro.analysis.runtime.make_lock` so the lock-order graph covers
  it).  Because the collector never calls out into other subsystems while
  holding its lock, every graph edge points *towards* ``obs-collector``
  and the graph stays acyclic.
* cross-thread causality is propagated through explicit **bindings**: the
  engine binds a ticket id to its action span, and the driver threads look
  the parent up with :func:`bound` when the completion comes back.
* spans that start and end in different event-loop callbacks (the
  two-phase action, the coordinator's claim→done run window) are recorded
  at *end* time via :meth:`Tracer.record_complete` with a pre-allocated
  id from :meth:`Tracer.new_id`, so there is never an open span to leak.

Open/close discipline: instrumentation opens spans only through the
``with tracer.span(...)`` context manager -- the lint rule RPR007 flags
any bare :meth:`Tracer.start_span` call outside a ``try/finally``.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.analysis.runtime import make_lock

__all__ = [
    "COLLECTOR_LOCK_ROLE",
    "Span",
    "Tracer",
    "span",
    "event",
    "bound",
    "bind",
    "unbind",
    "active",
    "install",
    "uninstall",
]

#: Lock-order-graph role name of the tracer's collector lock.
COLLECTOR_LOCK_ROLE = "obs-collector"

#: Finished spans a thread buffers before draining into the collector.
_FLUSH_THRESHOLD = 256


@dataclass
class Span:
    """One named interval on one thread.

    ``start_wall``/``end_wall`` are :func:`time.monotonic` seconds;
    ``start_sim``/``end_sim`` are simulated-clock seconds when the
    recording site had a clock in hand (engine-side spans do, wire-reader
    spans do not -- the dual timestamps are what let a trace line up the
    simulated schedule against real transport latency).
    """

    span_id: int
    parent_id: Optional[int]
    name: str
    thread_id: int
    thread_name: str
    start_wall: float
    end_wall: Optional[float] = None
    start_sim: Optional[float] = None
    end_sim: Optional[float] = None
    status: str = "ok"
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration_s(self) -> Optional[float]:
        """Wall duration, or ``None`` while the span is still open."""
        if self.end_wall is None:
            return None
        return self.end_wall - self.start_wall

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form (the flight-recorder/export shape)."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "thread_id": self.thread_id,
            "thread_name": self.thread_name,
            "start_wall": self.start_wall,
            "end_wall": self.end_wall,
            "start_sim": self.start_sim,
            "end_sim": self.end_sim,
            "status": self.status,
            "attrs": dict(self.attrs),
        }


class _ThreadState:
    """One thread's recording state: finished-span buffer and open-span stack.

    A plain object (NOT ``threading.local``): each recording thread creates
    its own instance and registers it with the collector, which must be able
    to read *other* threads' buffers at drain time -- a ``threading.local``
    would resolve to the draining thread's empty namespace instead.
    """

    __slots__ = ("buffer", "stack", "started", "ended")

    def __init__(self) -> None:
        self.buffer: List[Span] = []
        self.stack: List[int] = []
        self.started = 0
        self.ended = 0


class _SpanContext:
    """The ``with tracer.span(...)`` handle.

    Entering pushes the span onto the thread's open stack (so nested spans
    auto-parent); exiting pops it, stamps the end timestamps (and
    ``status="error"`` on an exception), and records the finished span.
    """

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span_obj: Span) -> None:
        self._tracer = tracer
        self.span = span_obj

    def set(self, **attrs: Any) -> "_SpanContext":
        """Merge extra attributes onto the span; chainable."""
        self.span.attrs.update(attrs)
        return self

    def set_sim(self, *, start: Optional[float] = None, end: Optional[float] = None) -> None:
        """Stamp simulated-clock timestamps after the span was opened."""
        if start is not None:
            self.span.start_sim = start
        if end is not None:
            self.span.end_sim = end

    def __enter__(self) -> "_SpanContext":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        self._tracer.end_span(self.span, error=exc_type is not None)
        return False


class _NullSpan:
    """Shared no-op stand-in returned by :func:`span` when tracing is off."""

    __slots__ = ()

    span = None

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def set_sim(self, *, start: Optional[float] = None, end: Optional[float] = None) -> None:
        return None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Tracer:
    """Central collector for spans recorded by many threads.

    Each thread owns a private buffer (no lock on the record path); the
    collector lock only guards the drained span list, the cross-thread
    bindings, and the thread-state registry.  ``max_spans`` bounds memory:
    past it, new spans are counted in :attr:`dropped` instead of stored
    (the flight recorder keeps its own bounded ring regardless).
    """

    def __init__(self, *, max_spans: int = 1_000_000) -> None:
        if max_spans < 1:
            raise ValueError(f"max_spans must be >= 1, got {max_spans}")
        self.max_spans = int(max_spans)
        self.dropped = 0
        self._lock = make_lock(COLLECTOR_LOCK_ROLE)
        self._ids = itertools.count(1)
        self._spans: List[Span] = []
        self._bindings: Dict[Any, int] = {}
        self._states: List[_ThreadState] = []
        self._local = threading.local()
        #: Called with every finished span (the flight recorder's feed).
        self._sinks: List[Callable[[Span], None]] = []

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def new_id(self) -> int:
        """Allocate a span id without opening a span (for spans recorded
        at end time whose id must be a parent before then)."""
        return next(self._ids)

    def _state(self) -> _ThreadState:
        state = getattr(self._local, "state", None)
        if state is None:
            state = _ThreadState()
            self._local.state = state
            with self._lock:
                self._states.append(state)
        return state

    def start_span(
        self,
        name: str,
        *,
        parent_id: Optional[int] = None,
        sim_time: Optional[float] = None,
        span_id: Optional[int] = None,
        **attrs: Any,
    ) -> Span:
        """Open a span on the calling thread; pair with :meth:`end_span`.

        Direct callers outside :mod:`repro.obs` must wrap the pair in
        ``try/finally`` (lint rule RPR007); prefer ``with self.span(...)``.
        ``parent_id=None`` auto-parents to the thread's innermost open span.
        """
        state = self._state()
        if parent_id is None and state.stack:
            parent_id = state.stack[-1]
        thread = threading.current_thread()
        span_obj = Span(
            span_id=self.new_id() if span_id is None else span_id,
            parent_id=parent_id,
            name=name,
            thread_id=thread.ident or 0,
            thread_name=thread.name,
            start_wall=time.monotonic(),
            start_sim=sim_time,
            end_sim=sim_time,
            attrs=attrs,
        )
        state.stack.append(span_obj.span_id)
        state.started += 1
        return span_obj

    def end_span(self, span_obj: Span, *, error: bool = False) -> None:
        """Close ``span_obj`` and hand it to the collector buffer."""
        span_obj.end_wall = time.monotonic()
        if error:
            span_obj.status = "error"
        state = self._state()
        if state.stack and state.stack[-1] == span_obj.span_id:
            state.stack.pop()
        state.ended += 1
        self._record(state, span_obj)

    def span(
        self,
        name: str,
        *,
        parent_id: Optional[int] = None,
        sim_time: Optional[float] = None,
        **attrs: Any,
    ) -> _SpanContext:
        """The one way to open a span inline: ``with tracer.span(...)``."""
        opened = self.start_span(name, parent_id=parent_id, sim_time=sim_time, **attrs)
        return _SpanContext(self, opened)

    def record_complete(
        self,
        name: str,
        *,
        start_wall: float,
        end_wall: Optional[float] = None,
        span_id: Optional[int] = None,
        parent_id: Optional[int] = None,
        start_sim: Optional[float] = None,
        end_sim: Optional[float] = None,
        status: str = "ok",
        **attrs: Any,
    ) -> Span:
        """Record an already-finished span in one shot.

        For intervals that start and end in different event-loop callbacks
        (two-phase actions, claim→done run windows): the caller captured
        the start timestamps itself and may have pre-allocated ``span_id``
        via :meth:`new_id` so children could name it as parent meanwhile.
        """
        state = self._state()
        thread = threading.current_thread()
        span_obj = Span(
            span_id=self.new_id() if span_id is None else span_id,
            parent_id=parent_id,
            name=name,
            thread_id=thread.ident or 0,
            thread_name=thread.name,
            start_wall=start_wall,
            end_wall=time.monotonic() if end_wall is None else end_wall,
            start_sim=start_sim,
            end_sim=end_sim,
            status=status,
            attrs=attrs,
        )
        state.started += 1
        state.ended += 1
        self._record(state, span_obj)
        return span_obj

    def event(self, name: str, *, parent_id: Optional[int] = None,
              sim_time: Optional[float] = None, **attrs: Any) -> Span:
        """A zero-duration point event (chaos injections, rejections)."""
        now = time.monotonic()
        state = self._state()
        if parent_id is None and state.stack:
            parent_id = state.stack[-1]
        return self.record_complete(
            name,
            start_wall=now,
            end_wall=now,
            parent_id=parent_id,
            start_sim=sim_time,
            end_sim=sim_time,
            **attrs,
        )

    def _record(self, state: _ThreadState, span_obj: Span) -> None:
        state.buffer.append(span_obj)
        for sink in self._sinks:
            sink(span_obj)
        if len(state.buffer) >= _FLUSH_THRESHOLD:
            self._drain(state)

    def _drain(self, state: _ThreadState) -> None:
        # Copy-then-delete keeps concurrent appends safe without locking
        # the append path: an append racing the drain lands after the
        # copied prefix and survives the slice delete.
        drained = state.buffer[: len(state.buffer)]
        del state.buffer[: len(drained)]
        with self._lock:
            room = self.max_spans - len(self._spans)
            if room < len(drained):
                self.dropped += len(drained) - max(room, 0)
                drained = drained[: max(room, 0)]
            self._spans.extend(drained)

    # ------------------------------------------------------------------
    # Cross-thread causality
    # ------------------------------------------------------------------
    def bind(self, key: Any, span_id: int) -> None:
        """Name ``span_id`` as the causal parent for ``key`` (a ticket id),
        so a completion handled on another thread can attach to it."""
        with self._lock:
            self._bindings[key] = span_id

    def bound(self, key: Any) -> Optional[int]:
        """The span id bound to ``key``, or ``None``."""
        with self._lock:
            return self._bindings.get(key)

    def unbind(self, key: Any) -> None:
        """Drop a binding (the action completed; the key may be reused)."""
        with self._lock:
            self._bindings.pop(key, None)

    # ------------------------------------------------------------------
    # Collection
    # ------------------------------------------------------------------
    def current_span_id(self) -> Optional[int]:
        """The calling thread's innermost open span id, if any."""
        state = getattr(self._local, "state", None)
        if state is None or not state.stack:
            return None
        return state.stack[-1]

    def counts(self) -> Tuple[int, int]:
        """``(started, ended)`` across every thread that ever recorded."""
        with self._lock:
            states = list(self._states)
        started = sum(state.started for state in states)
        ended = sum(state.ended for state in states)
        return started, ended

    def open_spans(self) -> int:
        """Spans started but not yet ended, across all threads."""
        started, ended = self.counts()
        return started - ended

    def drain(self) -> List[Span]:
        """Flush every thread buffer and return all collected spans.

        Call after the traced workload has quiesced (worker threads
        closed); a thread still recording keeps its racing span for the
        next drain rather than losing it.
        """
        with self._lock:
            states = list(self._states)
        for state in states:
            self._drain(state)
        with self._lock:
            return list(self._spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self.drain())


# ---------------------------------------------------------------------------
# Module-level activation (the zero-cost-when-off switch)
# ---------------------------------------------------------------------------

_active: Optional[Tracer] = None


def active() -> Optional[Tracer]:
    """The installed tracer, or ``None`` (tracing off)."""
    return _active


def install(tracer: Optional[Tracer] = None) -> Tracer:
    """Install ``tracer`` (or a fresh one) as the process-wide tracer."""
    global _active
    if tracer is None:
        tracer = Tracer()
    _active = tracer
    return tracer


def uninstall() -> Optional[Tracer]:
    """Deactivate tracing; returns the tracer that was active."""
    global _active
    tracer = _active
    _active = None
    return tracer


def span(name: str, *, parent_id: Optional[int] = None,
         sim_time: Optional[float] = None, **attrs: Any) -> Any:
    """``with obs.span(...)`` at an instrumentation site.

    The disabled fast path is one global read and a shared no-op context
    manager; the bench ``obs`` area gates its cost on the campaign
    scenario at < 2%.
    """
    tracer = _active
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, parent_id=parent_id, sim_time=sim_time, **attrs)


def event(name: str, *, parent_id: Optional[int] = None,
          sim_time: Optional[float] = None, **attrs: Any) -> None:
    """Record a point event when tracing is on; no-op otherwise."""
    tracer = _active
    if tracer is None:
        return
    tracer.event(name, parent_id=parent_id, sim_time=sim_time, **attrs)


def bind(key: Any, span_id: Optional[int]) -> None:
    """Bind a causal key to a span id when tracing is on; no-op otherwise."""
    tracer = _active
    if tracer is None or span_id is None:
        return
    tracer.bind(key, span_id)


def unbind(key: Any) -> None:
    """Drop a causal binding when tracing is on; no-op otherwise."""
    tracer = _active
    if tracer is None:
        return
    tracer.unbind(key)


def bound(key: Any) -> Optional[int]:
    """Look up a causal binding when tracing is on; ``None`` otherwise."""
    tracer = _active
    if tracer is None:
        return None
    return tracer.bound(key)
