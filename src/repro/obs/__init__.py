"""``repro.obs``: the unified telemetry layer.

Three cooperating pieces (full model in ``docs/observability.md``):

* :mod:`repro.obs.tracer` -- causal span tracing: per-thread buffers, a
  central collector, dual SimClock/monotonic timestamps, parent/child
  links across threads.  Off by default; :func:`span`/:func:`event` are
  near-free no-ops until a tracer is installed.
* :mod:`repro.obs.metrics` -- the process-wide metrics registry the
  layers' ad-hoc counters are re-homed onto (their public accessors stay
  as thin views).  Always on; mutation rides the owning component's lock.
* :mod:`repro.obs.recorder` -- the flight recorder: a bounded ring of
  recent spans/events dumped as a JSON artifact on ``CompletionTimeout``,
  soak invariant breaks, and failing tests.

:func:`observed` is the one-call switch the CLI's ``--trace`` flag and
the bench harness use::

    with obs.observed() as session:
        run_campaign(...)
    session.write_trace(path)
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.obs import recorder as _recorder_module
from repro.obs import tracer as _tracer_module
from repro.obs.export import (
    chrome_trace_events,
    load_trace,
    render_summary,
    summarise_trace,
    write_chrome_trace,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    next_instance,
    reset_registry,
)
from repro.obs.recorder import FlightRecorder, flight_dump, note
from repro.obs.tracer import Span, Tracer, active, bind, bound, event, span, unbind

__all__ = [
    "Span",
    "Tracer",
    "span",
    "event",
    "bind",
    "bound",
    "unbind",
    "active",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "reset_registry",
    "next_instance",
    "FlightRecorder",
    "flight_dump",
    "note",
    "chrome_trace_events",
    "write_chrome_trace",
    "load_trace",
    "summarise_trace",
    "render_summary",
    "ObservedSession",
    "observed",
]


class ObservedSession:
    """One tracing window: installs tracer + recorder, collects on exit."""

    def __init__(self, *, max_spans: int = 1_000_000, recorder_capacity: int = 4096) -> None:
        self.tracer = Tracer(max_spans=max_spans)
        self.recorder = FlightRecorder(capacity=recorder_capacity)
        self.spans: List[Span] = []

    def __enter__(self) -> "ObservedSession":
        _tracer_module.install(self.tracer)
        _recorder_module.install(self.recorder)
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.spans = self.tracer.drain()
        if _recorder_module.active() is self.recorder:
            _recorder_module.uninstall()
        if _tracer_module.active() is self.tracer:
            _tracer_module.uninstall()

    def write_trace(self, path: Path, *, metadata: Optional[Dict[str, Any]] = None) -> Path:
        """Export the collected spans as Perfetto-loadable Chrome JSON."""
        spans = self.spans if self.spans else self.tracer.drain()
        return write_chrome_trace(spans, path, metadata=metadata)

    def summary(self) -> Dict[str, Any]:
        """Per-stage percentiles and the slowest run's critical path."""
        spans = self.spans if self.spans else self.tracer.drain()
        return summarise_trace([span_obj.to_dict() for span_obj in spans])


def observed(*, max_spans: int = 1_000_000, recorder_capacity: int = 4096) -> ObservedSession:
    """``with obs.observed() as session:`` -- trace the enclosed work."""
    return ObservedSession(max_spans=max_spans, recorder_capacity=recorder_capacity)
