"""repro: a reproduction of "Exploring Benchmarks for Self-Driving Labs using Color Matching".

The package implements, in pure Python (numpy/scipy only), the full system the
paper describes: a simulated five-module robotic workcell, the WEI-style
workflow platform it runs on, the computer-vision plate-reading pipeline, the
genetic-algorithm and Bayesian colour-matching solvers, the closed-loop colour
picker application, the data-publication portal, and the SDL benchmark metrics
and experiments of the paper's evaluation.

Quickstart
----------
>>> from repro import ColorPickerApp, ExperimentConfig
>>> config = ExperimentConfig(n_samples=16, batch_size=4, seed=7)
>>> result = ColorPickerApp(config).run()
>>> result.n_samples
16

See ``examples/`` for runnable scripts and ``benchmarks/`` for the harness
that regenerates every table and figure in the paper.
"""

from repro.color.mixing import DyeSet, SubtractiveMixingModel
from repro.color.targets import TARGET_COLORS, TargetColor, get_target
from repro.core.app import ColorPickerApp
from repro.core.batch import PAPER_BATCH_SIZES, BatchSweepResult, run_batch_sweep
from repro.core.campaign import CampaignResult, run_campaign
from repro.core.experiment import ExperimentConfig, ExperimentResult, SampleResult
from repro.core.metrics import PAPER_TABLE1, SdlMetrics, compute_metrics
from repro.publish.portal import DataPortal
from repro.solvers import (
    BayesianSolver,
    ColorSolver,
    EvolutionarySolver,
    GridSearchSolver,
    OracleSolver,
    RandomSearchSolver,
    make_solver,
)
from repro.wei.concurrent import ConcurrentWorkflowEngine
from repro.wei.workcell import Workcell, build_color_picker_workcell

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # Core application
    "ColorPickerApp",
    "ExperimentConfig",
    "ExperimentResult",
    "SampleResult",
    "SdlMetrics",
    "compute_metrics",
    "PAPER_TABLE1",
    "run_batch_sweep",
    "BatchSweepResult",
    "PAPER_BATCH_SIZES",
    "run_campaign",
    "CampaignResult",
    # Workcell / engines
    "Workcell",
    "build_color_picker_workcell",
    "ConcurrentWorkflowEngine",
    # Chemistry / targets
    "DyeSet",
    "SubtractiveMixingModel",
    "TargetColor",
    "TARGET_COLORS",
    "get_target",
    # Solvers
    "ColorSolver",
    "EvolutionarySolver",
    "BayesianSolver",
    "RandomSearchSolver",
    "GridSearchSolver",
    "OracleSolver",
    "make_solver",
    # Publication
    "DataPortal",
]
