"""Bayesian-optimisation solver.

The paper's second decision procedure (Section 2.5): a Gaussian-process
surrogate over the ratio cube with an expected-improvement acquisition.  The
paper notes BO "do[es] not yield a systematic improvement over the genetic
algorithm" on this problem; the solver-comparison benchmark reproduces that
observation.

Batch proposals use the constant-liar strategy: after selecting a candidate,
its predicted mean is temporarily treated as an observation so subsequent
candidates in the same batch spread out instead of piling onto one optimum.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy import stats

from repro.solvers.base import ColorSolver, register_solver
from repro.solvers.gp import GaussianProcess, RBFKernel
from repro.utils.validation import check_positive

__all__ = ["BayesianSolver", "expected_improvement"]


def expected_improvement(mean: np.ndarray, std: np.ndarray, best: float, xi: float = 0.01) -> np.ndarray:
    """Expected improvement for a *minimisation* problem.

    ``mean``/``std`` are the GP posterior at the candidate points, ``best`` is
    the incumbent (lowest observed score), ``xi`` a small exploration margin.
    """
    std = np.maximum(np.asarray(std, dtype=np.float64), 1e-12)
    improvement = best - xi - np.asarray(mean, dtype=np.float64)
    z = improvement / std
    return improvement * stats.norm.cdf(z) + std * stats.norm.pdf(z)


@register_solver("bayesian")
class BayesianSolver(ColorSolver):
    """GP + expected-improvement Bayesian optimisation over dye ratios.

    Parameters
    ----------
    n_initial:
        Number of random samples proposed before the surrogate is trusted.
    n_candidates:
        Size of the random candidate pool scored by the acquisition function
        at each proposal.
    xi:
        Exploration margin of the expected-improvement acquisition.
    refit_every:
        Hyperparameters are re-optimised every this many observations (a GP
        refit is O(n^3); for the 128-sample experiments this keeps proposal
        cost negligible next to the simulated robot time).
    """

    def __init__(
        self,
        n_dyes: int = 4,
        seed=None,
        *,
        n_initial: int = 8,
        n_candidates: int = 512,
        xi: float = 0.01,
        refit_every: int = 4,
        lengthscale: float = 0.3,
    ):
        super().__init__(n_dyes=n_dyes, seed=seed)
        check_positive("n_initial", n_initial)
        check_positive("n_candidates", n_candidates)
        check_positive("refit_every", refit_every)
        self.n_initial = int(n_initial)
        self.n_candidates = int(n_candidates)
        self.xi = float(xi)
        self.refit_every = int(refit_every)
        self.lengthscale = float(lengthscale)
        self._gp: Optional[GaussianProcess] = None
        self._observations_at_last_fit = 0

    def reset(self) -> None:
        super().reset()
        self._gp = None
        self._observations_at_last_fit = 0

    # ------------------------------------------------------------------
    # Proposal
    # ------------------------------------------------------------------
    def propose(self, batch_size: int) -> np.ndarray:
        check_positive("batch_size", batch_size)
        if self.n_observed < self.n_initial:
            return self.random_ratios(batch_size)

        ratios, scores = self.observed_arrays()
        gp = self._ensure_surrogate(ratios, scores)

        # Constant-liar batch selection.
        lie_x = ratios.copy()
        lie_y = scores.copy()
        best = float(scores.min())
        proposals = []
        for _ in range(batch_size):
            candidates = np.vstack(
                [
                    self.random_ratios(self.n_candidates),
                    self._perturbed_incumbents(lie_x, lie_y),
                ]
            )
            mean, std = gp.predict(candidates)
            acquisition = expected_improvement(mean, std, best, xi=self.xi)
            choice = candidates[int(np.argmax(acquisition))]
            proposals.append(choice)
            # Lie: pretend the GP mean was observed there and refit cheaply
            # (without hyperparameter optimisation) so the next pick spreads.
            lie_value = float(gp.predict(choice[None, :], return_std=False)[0][0])
            lie_x = np.vstack([lie_x, choice[None, :]])
            lie_y = np.append(lie_y, lie_value)
            gp = GaussianProcess(
                kernel=gp.kernel, noise=gp.noise, optimize_hyperparameters=False
            ).fit(lie_x, lie_y)
        return np.array(proposals)

    def _perturbed_incumbents(self, ratios: np.ndarray, scores: np.ndarray, count: int = 64) -> np.ndarray:
        """Candidates near the best few observations (local refinement pool)."""
        order = np.argsort(scores)[: max(3, len(scores) // 4)]
        base = ratios[self.rng.choice(order, size=count)]
        return self.clip_ratios(base + self.rng.normal(0.0, 0.08, size=base.shape))

    def _ensure_surrogate(self, ratios: np.ndarray, scores: np.ndarray) -> GaussianProcess:
        """Fit (or reuse) the GP surrogate on all observations."""
        needs_refit = (
            self._gp is None
            or self.n_observed - self._observations_at_last_fit >= self.refit_every
        )
        if needs_refit:
            optimize_now = self.n_observed >= 2 * self.n_initial
            gp = GaussianProcess(
                kernel=RBFKernel(lengthscale=self.lengthscale, variance=1.0),
                noise=1e-2,
                optimize_hyperparameters=optimize_now,
            )
            gp.fit(ratios, scores)
            self._gp = gp
            self._observations_at_last_fit = self.n_observed
        else:
            # Refit with current hyperparameters so new data is incorporated.
            self._gp = GaussianProcess(
                kernel=self._gp.kernel, noise=self._gp.noise, optimize_hyperparameters=False
            ).fit(ratios, scores)
        return self._gp

    def describe(self):
        info = super().describe()
        info.update(
            {
                "n_initial": self.n_initial,
                "n_candidates": self.n_candidates,
                "xi": self.xi,
                "refit_every": self.refit_every,
            }
        )
        return info
