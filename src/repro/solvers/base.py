"""The solver interface.

Solvers interact with the colour-picker application through a narrow,
black-box API (the paper stresses that treating the problem "as a black box
... allows us to employ the problem as a surrogate for more complex
problems"):

* :meth:`ColorSolver.propose` returns a batch of dye-ratio vectors in
  ``[0, 1]^n_dyes`` (the application scales them to dispense volumes),
* :meth:`ColorSolver.observe` feeds back the measured colours and their
  scores (lower is better) for previously proposed ratios.

The registry (:data:`SOLVER_REGISTRY` / :func:`make_solver`) lets experiment
configurations name solvers as strings, which is how the application supports
"the substitution of alternative ... optimization solvers" without code
changes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.utils.rng import ensure_rng

__all__ = ["SolverError", "Observation", "ColorSolver", "SOLVER_REGISTRY", "register_solver", "make_solver"]


class SolverError(RuntimeError):
    """Raised for solver misuse (e.g. observing ratios that were never proposed)."""


@dataclass(frozen=True)
class Observation:
    """One evaluated sample: the proposed ratios, the measured colour, the score."""

    ratios: np.ndarray
    measured_rgb: np.ndarray
    score: float

    def __post_init__(self):
        object.__setattr__(self, "ratios", np.asarray(self.ratios, dtype=np.float64))
        object.__setattr__(self, "measured_rgb", np.asarray(self.measured_rgb, dtype=np.float64))
        object.__setattr__(self, "score", float(self.score))


class ColorSolver:
    """Base class for colour-matching solvers.

    Parameters
    ----------
    n_dyes:
        Dimensionality of the ratio vectors (4 for the paper's CMYK set).
    seed:
        Seed / generator for the solver's internal randomness.
    """

    #: Registry name; subclasses override.
    name = "base"

    def __init__(self, n_dyes: int = 4, seed=None):
        if n_dyes < 1:
            raise ValueError(f"n_dyes must be >= 1, got {n_dyes}")
        self.n_dyes = n_dyes
        self.rng = ensure_rng(seed)
        self.history: List[Observation] = []

    # ------------------------------------------------------------------
    # Interface
    # ------------------------------------------------------------------
    def propose(self, batch_size: int) -> np.ndarray:
        """Return ``batch_size`` ratio vectors, shape ``(batch_size, n_dyes)``."""
        raise NotImplementedError

    def observe(self, ratios, measured_rgb, scores) -> None:
        """Record the outcome of previously proposed ratios.

        ``ratios`` is ``(n, n_dyes)``, ``measured_rgb`` is ``(n, 3)`` and
        ``scores`` is ``(n,)``; single samples may be passed unbatched.
        """
        ratios_arr = np.atleast_2d(np.asarray(ratios, dtype=np.float64))
        rgb_arr = np.atleast_2d(np.asarray(measured_rgb, dtype=np.float64))
        scores_arr = np.atleast_1d(np.asarray(scores, dtype=np.float64))
        if ratios_arr.shape[0] != scores_arr.shape[0] or rgb_arr.shape[0] != scores_arr.shape[0]:
            raise SolverError(
                f"mismatched observation sizes: {ratios_arr.shape[0]} ratios, "
                f"{rgb_arr.shape[0]} colours, {scores_arr.shape[0]} scores"
            )
        if ratios_arr.shape[1] != self.n_dyes:
            raise SolverError(
                f"expected ratios with {self.n_dyes} components, got {ratios_arr.shape[1]}"
            )
        for row_ratios, row_rgb, score in zip(ratios_arr, rgb_arr, scores_arr):
            self.history.append(Observation(ratios=row_ratios, measured_rgb=row_rgb, score=score))
        self._after_observe()

    def _after_observe(self) -> None:
        """Hook for subclasses that update internal state after observations."""

    def reset(self) -> None:
        """Forget all observations (a fresh experiment)."""
        self.history.clear()

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    @property
    def n_observed(self) -> int:
        """Number of evaluated samples seen so far."""
        return len(self.history)

    @property
    def best_observation(self) -> Optional[Observation]:
        """The best (lowest-score) observation so far, or None before any data."""
        if not self.history:
            return None
        return min(self.history, key=lambda obs: obs.score)

    @property
    def best_score(self) -> float:
        """The best score so far (inf before any data)."""
        best = self.best_observation
        return best.score if best is not None else float("inf")

    def random_ratios(self, count: int) -> np.ndarray:
        """Uniform random ratio vectors in [0, 1]^n_dyes (never all-zero)."""
        ratios = self.rng.uniform(0.0, 1.0, size=(count, self.n_dyes))
        # An all-zero row would dispense nothing; nudge it to a tiny uniform mix.
        zero_rows = ratios.sum(axis=1) < 1e-9
        ratios[zero_rows] = 1.0 / self.n_dyes
        return ratios

    def clip_ratios(self, ratios: np.ndarray) -> np.ndarray:
        """Clip ratios into [0, 1] and prevent all-zero rows."""
        clipped = np.clip(np.asarray(ratios, dtype=np.float64), 0.0, 1.0)
        zero_rows = clipped.sum(axis=-1) < 1e-9
        if np.any(zero_rows):
            clipped = np.atleast_2d(clipped)
            clipped[zero_rows] = 1.0 / self.n_dyes
        return clipped

    def observed_arrays(self):
        """All observations as ``(ratios, scores)`` arrays (empty arrays before data)."""
        if not self.history:
            return np.empty((0, self.n_dyes)), np.empty(0)
        ratios = np.stack([obs.ratios for obs in self.history])
        scores = np.array([obs.score for obs in self.history])
        return ratios, scores

    def describe(self) -> Dict[str, object]:
        """Description stored in run records."""
        return {"solver": self.name, "n_dyes": self.n_dyes, "observed": self.n_observed}


#: Mapping of registry name to solver factory.
SOLVER_REGISTRY: Dict[str, Callable[..., ColorSolver]] = {}


def register_solver(name: str):
    """Class decorator adding a solver class to :data:`SOLVER_REGISTRY`."""

    def decorator(cls):
        cls.name = name
        SOLVER_REGISTRY[name] = cls
        return cls

    return decorator


def make_solver(name: str, n_dyes: int = 4, seed=None, **kwargs) -> ColorSolver:
    """Instantiate a registered solver by name.

    Raises :class:`SolverError` for unknown names (listing the options).
    """
    try:
        factory = SOLVER_REGISTRY[name]
    except KeyError:
        raise SolverError(
            f"unknown solver {name!r}; registered solvers: {sorted(SOLVER_REGISTRY)}"
        ) from None
    return factory(n_dyes=n_dyes, seed=seed, **kwargs)
