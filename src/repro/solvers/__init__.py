"""Colour-picking solvers.

"We have implemented to date two such decision procedures, a simple
evolutionary solver (a genetic algorithm) and a Bayesian solver, thus
demonstrating the ability to run multiple optimization algorithms without
changes to other elements of the system" (paper Section 2.5).

All solvers implement the same black-box interface
(:class:`repro.solvers.base.ColorSolver`): they propose batches of dye
*ratios*, receive the measured colours and scores back, and never see the
chemistry model.  Besides the paper's two solvers this package ships random
and grid baselines and an analytic "oracle" (which inverts the simulated
chemistry) used only as an upper bound in the solver-comparison benchmark.
"""

from repro.solvers.annealing import SimulatedAnnealingSolver
from repro.solvers.base import ColorSolver, Observation, SolverError, make_solver, SOLVER_REGISTRY
from repro.solvers.bayesian import BayesianSolver
from repro.solvers.evolutionary import EvolutionarySolver
from repro.solvers.gp import GaussianProcess, RBFKernel
from repro.solvers.grid_search import GridSearchSolver
from repro.solvers.oracle import OracleSolver
from repro.solvers.random_search import RandomSearchSolver
from repro.solvers.sobol import SobolSolver

__all__ = [
    "ColorSolver",
    "Observation",
    "SolverError",
    "make_solver",
    "SOLVER_REGISTRY",
    "EvolutionarySolver",
    "BayesianSolver",
    "GaussianProcess",
    "RBFKernel",
    "RandomSearchSolver",
    "GridSearchSolver",
    "OracleSolver",
    "SimulatedAnnealingSolver",
    "SobolSolver",
]
