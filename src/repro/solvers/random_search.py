"""Uniform random-search baseline.

Not described in the paper, but the natural lower-bound baseline for the
solver-comparison benchmark: every proposal is an independent uniform draw
from the ratio cube, so any structure a learning solver exploits shows up as
an improvement over this curve.
"""

from __future__ import annotations

import numpy as np

from repro.solvers.base import ColorSolver, register_solver
from repro.utils.validation import check_positive

__all__ = ["RandomSearchSolver"]


@register_solver("random")
class RandomSearchSolver(ColorSolver):
    """Proposes independent uniform random dye ratios."""

    def propose(self, batch_size: int) -> np.ndarray:
        check_positive("batch_size", batch_size)
        return self.random_ratios(batch_size)
