"""Analytic "oracle" baseline.

The paper observes that "the color picking problem admits to an analytic
solution, given accurate models of how colors combine and the properties of
our color sensor" (Section 2.5) -- but deliberately treats the problem as a
black box.  The oracle solver is the exception that proves the rule: it is
given the chemistry model and inverts it directly, providing an upper bound on
achievable accuracy in the solver-comparison benchmark.  It must never be used
as a "real" solver because it cheats.
"""

from __future__ import annotations

import numpy as np

from repro.color.mixing import MixingModel
from repro.solvers.base import ColorSolver, SolverError, register_solver
from repro.utils.validation import check_positive

__all__ = ["OracleSolver"]


@register_solver("oracle")
class OracleSolver(ColorSolver):
    """Inverts the chemistry model to propose near-optimal ratios immediately.

    Parameters
    ----------
    chemistry:
        The forward mixing model (the thing real solvers never see).
    target_rgb:
        The target colour being matched.
    max_component_volume_ul:
        The per-dye maximum dispense volume the application uses to scale
        ratios into volumes (``volume = ratio * max_component_volume``),
        needed to convert the inverted volumes back into ratios.
    jitter:
        Small Gaussian jitter applied to repeated proposals so batches are not
        identical (mimicking replicate wells around the analytic optimum).
    """

    def __init__(
        self,
        n_dyes: int = 4,
        seed=None,
        *,
        chemistry: MixingModel = None,
        target_rgb=None,
        max_component_volume_ul: float = 80.0,
        jitter: float = 0.02,
    ):
        super().__init__(n_dyes=n_dyes, seed=seed)
        if chemistry is None or target_rgb is None:
            raise SolverError("OracleSolver requires both 'chemistry' and 'target_rgb'")
        check_positive("max_component_volume_ul", max_component_volume_ul)
        if chemistry.dyes.n_dyes != n_dyes:
            raise SolverError(
                f"chemistry has {chemistry.dyes.n_dyes} dyes but solver was built for {n_dyes}"
            )
        self.chemistry = chemistry
        self.target_rgb = np.asarray(target_rgb, dtype=np.float64)
        self.max_component_volume_ul = float(max_component_volume_ul)
        self.jitter = float(jitter)
        self._optimum_ratios = self._solve()

    def _solve(self) -> np.ndarray:
        volumes = self.chemistry.invert(self.target_rgb, total_volume=self.max_component_volume_ul)
        if volumes.sum() <= 0:
            return np.full(self.n_dyes, 1.0 / self.n_dyes)
        # The application converts ratios to volumes as ratio * max_component
        # volume, so dividing by that maximum reproduces the inverted volumes.
        return np.clip(volumes / self.max_component_volume_ul, 0.0, 1.0)

    @property
    def optimum_ratios(self) -> np.ndarray:
        """The analytically derived ratio vector."""
        return self._optimum_ratios.copy()

    def propose(self, batch_size: int) -> np.ndarray:
        check_positive("batch_size", batch_size)
        base = np.tile(self._optimum_ratios, (batch_size, 1))
        if self.jitter > 0 and batch_size > 1:
            base[1:] = self.clip_ratios(base[1:] + self.rng.normal(0.0, self.jitter, size=base[1:].shape))
        return base
