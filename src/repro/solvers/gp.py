"""Gaussian-process regression (the surrogate model for the Bayesian solver).

"Bayesian optimization leverages a surrogate probabilistic model, commonly
Gaussian Processes, to approximate the objective function and iteratively
refines this based on evaluations" (paper Section 2.5).  The paper's
implementation builds on scikit-learn; since this reproduction avoids that
dependency, the standard exact-GP machinery (RBF kernel, Cholesky solve,
log-marginal-likelihood hyperparameter fitting) is implemented here directly
on numpy/scipy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
from scipy import linalg, optimize

from repro.utils.validation import check_positive

__all__ = ["RBFKernel", "GaussianProcess"]


@dataclass
class RBFKernel:
    """Isotropic squared-exponential kernel with signal variance."""

    lengthscale: float = 0.3
    variance: float = 1.0

    def __post_init__(self):
        check_positive("lengthscale", self.lengthscale)
        check_positive("variance", self.variance)

    def __call__(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Kernel matrix between row-stacked inputs ``a`` (n, d) and ``b`` (m, d)."""
        a = np.atleast_2d(a)
        b = np.atleast_2d(b)
        sq_dist = ((a[:, None, :] - b[None, :, :]) ** 2).sum(axis=-1)
        return self.variance * np.exp(-0.5 * sq_dist / self.lengthscale**2)

    def with_params(self, lengthscale: float, variance: float) -> "RBFKernel":
        """Return a new kernel with the given hyperparameters."""
        return RBFKernel(lengthscale=lengthscale, variance=variance)


class GaussianProcess:
    """Exact GP regression with an RBF kernel and Gaussian observation noise.

    The targets are internally standardised (zero mean, unit variance) so the
    default hyperparameters behave sensibly across score scales; predictions
    are returned in the original units.
    """

    def __init__(
        self,
        kernel: Optional[RBFKernel] = None,
        noise: float = 1e-2,
        *,
        optimize_hyperparameters: bool = True,
    ):
        check_positive("noise", noise)
        self.kernel = kernel if kernel is not None else RBFKernel()
        self.noise = float(noise)
        self.optimize_hyperparameters = optimize_hyperparameters
        self._x_train: Optional[np.ndarray] = None
        self._y_mean = 0.0
        self._y_std = 1.0
        self._alpha: Optional[np.ndarray] = None
        self._cholesky: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    @property
    def is_fitted(self) -> bool:
        """True once :meth:`fit` has been called with at least one point."""
        return self._alpha is not None

    def fit(self, x_train, y_train) -> "GaussianProcess":
        """Fit the GP to training inputs ``(n, d)`` and targets ``(n,)``."""
        x = np.atleast_2d(np.asarray(x_train, dtype=np.float64))
        y = np.asarray(y_train, dtype=np.float64).ravel()
        if x.shape[0] != y.shape[0]:
            raise ValueError(f"got {x.shape[0]} inputs but {y.shape[0]} targets")
        if x.shape[0] == 0:
            raise ValueError("cannot fit a GP to zero observations")

        self._y_mean = float(y.mean())
        self._y_std = float(y.std()) if y.std() > 1e-12 else 1.0
        y_normalised = (y - self._y_mean) / self._y_std

        if self.optimize_hyperparameters and x.shape[0] >= 4:
            self._fit_hyperparameters(x, y_normalised)

        self._x_train = x
        kernel_matrix = self.kernel(x, x) + self.noise * np.eye(x.shape[0])
        self._cholesky = linalg.cholesky(kernel_matrix, lower=True)
        self._alpha = linalg.cho_solve((self._cholesky, True), y_normalised)
        return self

    def _fit_hyperparameters(self, x: np.ndarray, y: np.ndarray) -> None:
        """Maximise the log marginal likelihood over (lengthscale, variance, noise)."""

        def negative_log_marginal(log_params) -> float:
            lengthscale, variance, noise = np.exp(log_params)
            kernel = self.kernel.with_params(lengthscale, variance)
            matrix = kernel(x, x) + noise * np.eye(x.shape[0])
            try:
                chol = linalg.cholesky(matrix, lower=True)
            except linalg.LinAlgError:
                return 1e12
            alpha = linalg.cho_solve((chol, True), y)
            log_det = 2.0 * np.log(np.diag(chol)).sum()
            return float(0.5 * y @ alpha + 0.5 * log_det + 0.5 * len(y) * np.log(2 * np.pi))

        initial = np.log([self.kernel.lengthscale, self.kernel.variance, self.noise])
        bounds = [(np.log(1e-2), np.log(3.0)), (np.log(1e-3), np.log(1e3)), (np.log(1e-6), np.log(1.0))]
        result = optimize.minimize(
            negative_log_marginal, initial, method="L-BFGS-B", bounds=bounds
        )
        if result.success or np.isfinite(result.fun):
            lengthscale, variance, noise = np.exp(result.x)
            self.kernel = self.kernel.with_params(float(lengthscale), float(variance))
            self.noise = float(noise)

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def predict(self, x_query, return_std: bool = True) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """Posterior mean (and standard deviation) at query points ``(m, d)``."""
        if not self.is_fitted:
            raise RuntimeError("GaussianProcess.predict called before fit")
        x = np.atleast_2d(np.asarray(x_query, dtype=np.float64))
        cross = self.kernel(x, self._x_train)
        mean = cross @ self._alpha * self._y_std + self._y_mean
        if not return_std:
            return mean, None
        solve = linalg.solve_triangular(self._cholesky, cross.T, lower=True)
        prior_var = np.diag(self.kernel(x, x))
        variance = np.maximum(prior_var - (solve**2).sum(axis=0), 1e-12)
        std = np.sqrt(variance) * self._y_std
        return mean, std

    def log_marginal_likelihood(self) -> float:
        """Log marginal likelihood of the fitted model (normalised-target units)."""
        if not self.is_fitted:
            raise RuntimeError("GaussianProcess.log_marginal_likelihood called before fit")
        # With K alpha = y_norm, the quadratic term y_norm^T K^{-1} y_norm equals
        # alpha^T K alpha (K including the noise term).
        log_det = 2.0 * np.log(np.diag(self._cholesky)).sum()
        kernel_matrix = self.kernel(self._x_train, self._x_train) + self.noise * np.eye(len(self._alpha))
        quadratic = float(self._alpha @ kernel_matrix @ self._alpha)
        return float(-0.5 * quadratic - 0.5 * log_det - 0.5 * len(self._alpha) * np.log(2 * np.pi))
