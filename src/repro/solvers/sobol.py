"""Low-discrepancy (Sobol) space-filling solver.

A quasi-random baseline between pure random search and the grid: proposals
follow a Sobol sequence (via :mod:`scipy.stats.qmc`), which covers the ratio
cube far more evenly than uniform random draws at the small sample budgets the
colour picker uses (N = 128).  Useful both as a stronger model-free baseline
and as the initial design for the Bayesian solver in ablation studies.
"""

from __future__ import annotations

import numpy as np
from scipy.stats import qmc

from repro.solvers.base import ColorSolver, register_solver
from repro.utils.validation import check_positive

__all__ = ["SobolSolver"]


@register_solver("sobol")
class SobolSolver(ColorSolver):
    """Proposes points from a scrambled Sobol sequence over the ratio cube."""

    def __init__(self, n_dyes: int = 4, seed=None, *, scramble: bool = True):
        super().__init__(n_dyes=n_dyes, seed=seed)
        # scipy's Sobol engine needs its own integer seed for scrambling.
        scramble_seed = int(self.rng.integers(0, 2**31 - 1)) if scramble else None
        self._engine = qmc.Sobol(d=n_dyes, scramble=scramble, seed=scramble_seed)

    def propose(self, batch_size: int) -> np.ndarray:
        check_positive("batch_size", batch_size)
        points = self._engine.random(batch_size)
        return self.clip_ratios(points)

    def reset(self) -> None:
        super().reset()
        self._engine.reset()
