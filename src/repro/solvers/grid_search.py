"""Grid-search baseline.

Exhaustively walks a uniform grid over the ratio cube (the same grid the
paper's GA uses for its initial population) in a shuffled order.  Useful as a
deterministic, model-free baseline and for coverage tests of the application
loop.
"""

from __future__ import annotations

import numpy as np

from repro.solvers.base import ColorSolver, register_solver
from repro.utils.validation import check_positive

__all__ = ["GridSearchSolver"]


@register_solver("grid")
class GridSearchSolver(ColorSolver):
    """Proposes points from a fixed uniform grid, cycling when exhausted.

    Parameters
    ----------
    resolution:
        Number of levels per dye.  The full grid has ``resolution ** n_dyes``
        points (81 for the default 3 levels over 4 dyes).
    shuffle:
        Visit the grid in a random order (True by default) so early samples
        spread over the whole cube instead of clustering at one corner.
    """

    def __init__(self, n_dyes: int = 4, seed=None, *, resolution: int = 3, shuffle: bool = True):
        super().__init__(n_dyes=n_dyes, seed=seed)
        if resolution < 2:
            raise ValueError(f"resolution must be >= 2, got {resolution}")
        self.resolution = int(resolution)
        self.shuffle = bool(shuffle)
        self._grid = self._build_grid()
        self._cursor = 0

    def _build_grid(self) -> np.ndarray:
        levels = np.linspace(0.0, 1.0, self.resolution)
        mesh = np.meshgrid(*([levels] * self.n_dyes), indexing="ij")
        grid = np.stack([axis.ravel() for axis in mesh], axis=1)
        # Drop the all-zero point: it dispenses nothing.
        grid = grid[grid.sum(axis=1) > 0]
        if self.shuffle:
            self.rng.shuffle(grid)
        return grid

    def reset(self) -> None:
        super().reset()
        self._grid = self._build_grid()
        self._cursor = 0

    @property
    def grid_size(self) -> int:
        """Number of distinct grid points."""
        return len(self._grid)

    def propose(self, batch_size: int) -> np.ndarray:
        check_positive("batch_size", batch_size)
        proposals = []
        for _ in range(batch_size):
            proposals.append(self._grid[self._cursor % len(self._grid)])
            self._cursor += 1
        return np.array(proposals)
