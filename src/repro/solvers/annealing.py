"""Simulated-annealing solver.

The paper's future work proposes integrating the colour picker with external
optimisation codes "so as to permit experimentation with their various
optimization codes and different search approaches" (Section 4).  Simulated
annealing is the classic alternative search approach: a random walk over the
ratio cube whose step acceptance is controlled by a temperature that cools as
the sample budget is spent.

Because the physical system evaluates proposals in batches, the solver keeps
one walker per batch slot; each walker anneals independently, which keeps the
B = 1 and B = 64 usages equally meaningful.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.solvers.base import ColorSolver, register_solver
from repro.utils.validation import check_positive

__all__ = ["SimulatedAnnealingSolver"]


@register_solver("annealing")
class SimulatedAnnealingSolver(ColorSolver):
    """Independent simulated-annealing walkers over dye ratios.

    Parameters
    ----------
    initial_temperature:
        Starting acceptance temperature, in score units (the colour distances
        being minimised; ~30 RGB units by default).
    cooling:
        Multiplicative cooling factor applied after every observed sample.
    step_scale:
        Standard deviation of the Gaussian proposal step in ratio space.
    min_step_scale:
        The step size also shrinks with temperature but never below this.
    """

    def __init__(
        self,
        n_dyes: int = 4,
        seed=None,
        *,
        initial_temperature: float = 30.0,
        cooling: float = 0.97,
        step_scale: float = 0.2,
        min_step_scale: float = 0.03,
    ):
        super().__init__(n_dyes=n_dyes, seed=seed)
        check_positive("initial_temperature", initial_temperature)
        check_positive("step_scale", step_scale)
        check_positive("min_step_scale", min_step_scale)
        if not 0.0 < cooling < 1.0:
            raise ValueError(f"cooling must be in (0, 1), got {cooling}")
        self.initial_temperature = float(initial_temperature)
        self.cooling = float(cooling)
        self.step_scale = float(step_scale)
        self.min_step_scale = float(min_step_scale)
        self.temperature = float(initial_temperature)
        # One walker per batch slot: current position and current score.
        self._positions: List[np.ndarray] = []
        self._scores: List[float] = []
        self._pending_slots: List[int] = []

    def reset(self) -> None:
        super().reset()
        self.temperature = self.initial_temperature
        self._positions.clear()
        self._scores.clear()
        self._pending_slots.clear()

    # ------------------------------------------------------------------
    # Proposal / observation
    # ------------------------------------------------------------------
    def _current_step_scale(self) -> float:
        fraction = self.temperature / self.initial_temperature
        return max(self.step_scale * fraction, self.min_step_scale)

    def propose(self, batch_size: int) -> np.ndarray:
        check_positive("batch_size", batch_size)
        while len(self._positions) < batch_size:
            self._positions.append(self.random_ratios(1)[0])
            self._scores.append(float("inf"))

        proposals = []
        self._pending_slots = []
        scale = self._current_step_scale()
        for slot in range(batch_size):
            if not np.isfinite(self._scores[slot]):
                candidate = self._positions[slot]
            else:
                step = self.rng.normal(0.0, scale, size=self.n_dyes)
                candidate = self.clip_ratios(self._positions[slot] + step)
            proposals.append(np.atleast_1d(np.asarray(candidate)).ravel())
            self._pending_slots.append(slot)
        return np.array(proposals)

    def _after_observe(self) -> None:
        # Pair the newest observations with the slots proposed last.
        new = self.history[-len(self._pending_slots) :] if self._pending_slots else []
        for slot, observation in zip(self._pending_slots, new):
            current = self._scores[slot]
            accept = observation.score <= current
            if not accept and np.isfinite(current) and self.temperature > 0:
                probability = np.exp(-(observation.score - current) / self.temperature)
                accept = self.rng.random() < probability
            if accept:
                self._positions[slot] = observation.ratios.copy()
                self._scores[slot] = observation.score
            self.temperature *= self.cooling
        self._pending_slots = []

    def describe(self) -> Dict[str, object]:
        info = super().describe()
        info.update(
            {
                "initial_temperature": self.initial_temperature,
                "cooling": self.cooling,
                "temperature": self.temperature,
                "walkers": len(self._positions),
            }
        )
        return info
