"""The paper's evolutionary (genetic-algorithm) solver.

Section 2.5 describes the algorithm precisely, and this implementation follows
it step for step:

* "For the initial population, points are sampled from a uniform grid of
  proper dimensions (corresponding to the number of mixing colors)."
* "The most accurate element of the previous population is propagated into the
  new generation."  (elitism)
* "One third of the new population is created by randomly selecting two
  elements of the previous population and taking the average of them."
  (averaging crossover)
* "One third of the population is created by taking a random element of the
  previous population and randomly shifting its ratios."  (mutation)
* "The final third of the population is created by randomly creating a new set
  of ratios."  (immigration)

The population size is independent of the experiment batch size: proposals are
drawn from a queue of not-yet-evaluated population members, and a new
generation is bred whenever the queue runs dry and at least one full
population has been graded.  This is what lets the same solver drive B = 1 and
B = 64 experiments unchanged (Figure 4).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.solvers.base import ColorSolver, register_solver
from repro.utils.validation import check_positive

__all__ = ["EvolutionarySolver"]


def uniform_grid_population(n_dyes: int, population_size: int, rng) -> np.ndarray:
    """Sample the initial population from a uniform grid over the ratio cube.

    The grid resolution is the smallest ``k`` with ``k**n_dyes >= population_size``;
    population members are distinct grid points chosen uniformly at random
    (all-zero points are excluded because they dispense nothing).
    """
    resolution = max(3, int(np.ceil(population_size ** (1.0 / n_dyes))))
    levels = np.linspace(0.0, 1.0, resolution)
    # Enumerate grid points lazily via mixed-radix decoding of random indices.
    total_points = resolution**n_dyes
    chosen = rng.choice(total_points, size=min(population_size, total_points - 1) + 1, replace=False)
    points = []
    for index in chosen:
        digits = []
        remainder = int(index)
        for _ in range(n_dyes):
            digits.append(remainder % resolution)
            remainder //= resolution
        point = levels[np.array(digits)]
        if point.sum() > 0:
            points.append(point)
        if len(points) == population_size:
            break
    while len(points) < population_size:  # top up if the all-zero point was drawn
        extra = rng.uniform(0.0, 1.0, size=n_dyes)
        points.append(extra)
    return np.array(points)


@register_solver("evolutionary")
class EvolutionarySolver(ColorSolver):
    """Genetic algorithm over dye ratios, as described in the paper.

    Parameters
    ----------
    population_size:
        Number of individuals per generation (12 by default -- small enough
        that a B = 1 experiment evolves several generations within 128
        samples, large enough for meaningful crossover).
    mutation_scale:
        Standard deviation of the Gaussian ratio shift used for the mutation
    third of each generation.
    elitism:
        Number of best individuals copied unchanged into the next generation.
    """

    def __init__(
        self,
        n_dyes: int = 4,
        seed=None,
        *,
        population_size: int = 12,
        mutation_scale: float = 0.15,
        elitism: int = 1,
    ):
        super().__init__(n_dyes=n_dyes, seed=seed)
        check_positive("population_size", population_size)
        check_positive("mutation_scale", mutation_scale)
        if elitism < 0 or elitism >= population_size:
            raise ValueError(
                f"elitism must be in [0, population_size), got {elitism} for population {population_size}"
            )
        self.population_size = int(population_size)
        self.mutation_scale = float(mutation_scale)
        self.elitism = int(elitism)
        self.generation = 0
        self._pending: List[np.ndarray] = []
        self._current_population: Optional[np.ndarray] = None
        self._graded: List[tuple] = []  # (ratios, score) for the current generation

    # ------------------------------------------------------------------
    # ColorSolver interface
    # ------------------------------------------------------------------
    def reset(self) -> None:
        super().reset()
        self.generation = 0
        self._pending.clear()
        self._current_population = None
        self._graded.clear()

    def propose(self, batch_size: int) -> np.ndarray:
        check_positive("batch_size", batch_size)
        proposals = []
        for _ in range(batch_size):
            if not self._pending:
                self._refill_pending()
            proposals.append(self._pending.pop(0))
        return np.array(proposals)

    def _after_observe(self) -> None:
        # The breeding step works from the full observation history, so the
        # graded pool is simply a mirror of it.
        self._graded = [(obs.ratios, obs.score) for obs in self.history]

    # ------------------------------------------------------------------
    # GA internals
    # ------------------------------------------------------------------
    def _refill_pending(self) -> None:
        """Generate the next batch of individuals awaiting evaluation."""
        if self._current_population is None:
            population = uniform_grid_population(self.n_dyes, self.population_size, self.rng)
            self._current_population = population
        elif len(self.history) == 0:
            # propose() called repeatedly before any observe(): keep sampling
            # fresh grid points rather than re-issuing the same individuals.
            population = uniform_grid_population(self.n_dyes, self.population_size, self.rng)
        else:
            population = self._breed()
            self._current_population = population
            self.generation += 1
        self._pending.extend(list(np.atleast_2d(population)))

    def _breed(self) -> np.ndarray:
        """Create a new generation from all graded observations so far."""
        ratios, scores = self.observed_arrays()
        order = np.argsort(scores)
        parents = ratios[order[: max(self.population_size, 2)]]

        new_population: List[np.ndarray] = []
        # Elitism: best individual(s) carried over unchanged.
        for index in range(min(self.elitism, len(parents))):
            new_population.append(parents[index].copy())

        remaining = self.population_size - len(new_population)
        n_crossover = remaining // 3
        n_mutation = remaining // 3
        n_random = remaining - n_crossover - n_mutation

        for _ in range(n_crossover):
            pick = self.rng.choice(len(parents), size=2, replace=len(parents) < 2)
            child = parents[pick].mean(axis=0)
            new_population.append(child)

        for _ in range(n_mutation):
            parent = parents[self.rng.integers(0, len(parents))]
            shift = self.rng.normal(0.0, self.mutation_scale, size=self.n_dyes)
            new_population.append(self.clip_ratios(parent + shift))

        for _ in range(n_random):
            new_population.append(self.random_ratios(1)[0])

        return self.clip_ratios(np.array(new_population))

    def describe(self):
        info = super().describe()
        info.update(
            {
                "population_size": self.population_size,
                "mutation_scale": self.mutation_scale,
                "elitism": self.elitism,
                "generation": self.generation,
            }
        )
        return info
