"""Simulation and wall clocks.

Every timestamp recorded by the workflow engine comes from a clock object so
the identical application code can run against the simulated workcell (where
8-hour experiments finish in milliseconds) or against real hardware drivers
with a wall clock.
"""

from __future__ import annotations

import time as _time
from typing import Protocol, runtime_checkable

from repro.utils.validation import check_non_negative

__all__ = ["Clock", "SimClock", "WallClock"]


@runtime_checkable
class Clock(Protocol):
    """Minimal clock interface used by the workflow engine and devices."""

    def now(self) -> float:
        """Current time in seconds (arbitrary epoch)."""
        ...

    def advance(self, duration_s: float) -> float:
        """Advance the clock by ``duration_s`` and return the new time."""
        ...


class SimClock:
    """A purely simulated clock.

    Time only moves when :meth:`advance` or :meth:`advance_to` is called, so
    a full 8-hour experiment can be simulated as fast as the Python code runs
    while still producing realistic elapsed-time measurements.
    """

    def __init__(self, start: float = 0.0):
        check_non_negative("start", start)
        self._now = float(start)

    def now(self) -> float:
        """Current simulated time in seconds since the clock's epoch."""
        return self._now

    def advance(self, duration_s: float) -> float:
        """Move the clock forward by ``duration_s`` seconds (must be >= 0)."""
        check_non_negative("duration_s", duration_s)
        self._now += float(duration_s)
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Move the clock forward to ``timestamp``; moving backwards is an error."""
        if timestamp < self._now:
            raise ValueError(
                f"cannot move SimClock backwards (now={self._now}, requested={timestamp})"
            )
        self._now = float(timestamp)
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"SimClock(now={self._now:.3f}s)"


class WallClock:
    """A wall clock backed by :func:`time.monotonic`.

    ``advance`` sleeps for the requested duration, which is what running the
    application against physical hardware would do while a device works.
    The benchmark suite never uses this class at real speed (it would take
    8 hours); it exists so the application code is genuinely portable, and
    its sleep can be disabled for testing.

    ``speedup`` compresses wall time: a clock built with ``speedup=1000``
    reads 1000 simulated seconds for every real second, and ``advance(d)``
    sleeps only ``d / 1000`` real seconds.  This is the pacing primitive of
    the :mod:`repro.wei.drivers` transport layer -- the same device
    durations, delivered as fast as the (virtual) hardware allows.
    """

    def __init__(self, *, sleep: bool = True, speedup: float = 1.0):
        if not (speedup > 0.0):
            raise ValueError(f"speedup must be > 0, got {speedup}")
        self._origin = _time.monotonic()
        self._sleep = sleep
        self._speedup = float(speedup)
        self._offset = 0.0

    @property
    def sleeps(self) -> bool:
        """True when :meth:`advance` really sleeps (False in no-sleep test mode)."""
        return self._sleep

    @property
    def speedup(self) -> float:
        """Clock seconds elapsing per real second (1.0 = true wall time)."""
        return self._speedup

    def real_seconds(self, duration_s: float) -> float:
        """Real (uncompressed) seconds corresponding to ``duration_s`` clock seconds."""
        return duration_s / self._speedup

    def now(self) -> float:
        """Seconds since this clock was created (plus any no-sleep advances)."""
        return (_time.monotonic() - self._origin) * self._speedup + self._offset

    def advance(self, duration_s: float) -> float:
        """Sleep for ``duration_s`` (or just account for it when sleep is disabled)."""
        check_non_negative("duration_s", duration_s)
        if self._sleep:
            _time.sleep(self.real_seconds(duration_s))
        else:
            self._offset += duration_s
        return self.now()

    def advance_to(self, timestamp: float) -> float:
        """Wait until the clock reads at least ``timestamp``.

        Wall time moves on its own, so a timestamp that has already passed is
        not an error (unlike :meth:`SimClock.advance_to`): the clock simply
        returns immediately.  This is what lets the event-driven engine run
        unchanged against real hardware.
        """
        remaining = timestamp - self.now()
        if remaining > 0:
            self.advance(remaining)
        return self.now()
