"""A small discrete-event scheduler.

The workflow engine mostly advances the clock action-by-action, but the
multi-OT-2 ablation (paper Section 4: "integrating additional OT2s in our
workflow, so that multiple plates of colors could be mixed at once") needs
devices working concurrently.  :class:`EventScheduler` provides the classic
event-queue primitive: callbacks scheduled at future simulated times, executed
in time order, able to schedule further events.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.sim.clock import Clock, SimClock

__all__ = ["Event", "EventScheduler"]


@dataclass(order=True)
class Event:
    """A scheduled callback; ordered by time then insertion order."""

    time: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    label: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark this event so it is skipped when its time arrives."""
        self.cancelled = True


class EventScheduler:
    """Time-ordered execution of callbacks against a clock.

    Any clock exposing ``now()``/``advance_to()`` works: a :class:`SimClock`
    jumps straight to each event's timestamp, while a
    :class:`~repro.sim.clock.WallClock` sleeps until it, so the same
    event-driven engine drives simulation and hardware alike.
    """

    def __init__(self, clock: Optional[Clock] = None):
        self.clock = clock if clock is not None else SimClock()
        self._queue: List[Event] = []
        self._counter = itertools.count()
        self._processed = 0

    @property
    def pending(self) -> int:
        """Number of events still waiting to run (including cancelled ones)."""
        return len(self._queue)

    @property
    def processed(self) -> int:
        """Number of events that have been executed so far."""
        return self._processed

    def next_time(self) -> Optional[float]:
        """Timestamp of the next pending event, or ``None`` when idle.

        Lets a coordinator merge several schedulers by always stepping the
        one whose next event is earliest (multi-workcell sharding).
        """
        event = self._peek()
        return event.time if event is not None else None

    def schedule_at(self, timestamp: float, callback: Callable[[], None], label: str = "") -> Event:
        """Schedule ``callback`` at absolute simulated time ``timestamp``."""
        if timestamp < self.clock.now():
            raise ValueError(
                f"cannot schedule in the past (now={self.clock.now()}, requested={timestamp})"
            )
        event = Event(time=float(timestamp), sequence=next(self._counter), callback=callback, label=label)
        heapq.heappush(self._queue, event)
        return event

    def schedule_after(self, delay_s: float, callback: Callable[[], None], label: str = "") -> Event:
        """Schedule ``callback`` ``delay_s`` seconds from the current time."""
        if delay_s < 0:
            raise ValueError(f"delay must be non-negative, got {delay_s}")
        return self.schedule_at(self.clock.now() + delay_s, callback, label)

    def step(self) -> Optional[Event]:
        """Run the next pending event (advancing the clock to it) and return it.

        Returns ``None`` when the queue is empty.  Cancelled events are
        silently discarded.
        """
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self.clock.advance_to(event.time)
            event.callback()
            self._processed += 1
            return event
        return None

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run events until the queue empties, ``until`` is reached or ``max_events`` fire.

        Returns the number of events executed by this call.
        """
        executed = 0
        while self._queue:
            if max_events is not None and executed >= max_events:
                break
            next_event = self._peek()
            if next_event is None:
                break
            if until is not None and next_event.time > until:
                break
            if self.step() is not None:
                executed += 1
        if until is not None and self.clock.now() < until and not self._queue:
            # Idle out the remainder of the window.
            self.clock.advance_to(until)
        return executed

    def _peek(self) -> Optional[Event]:
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0] if self._queue else None
