"""A small discrete-event scheduler.

The workflow engine mostly advances the clock action-by-action, but the
multi-OT-2 ablation (paper Section 4: "integrating additional OT2s in our
workflow, so that multiple plates of colors could be mixed at once") needs
devices working concurrently.  :class:`EventScheduler` provides the classic
event-queue primitive: callbacks scheduled at future simulated times, executed
in time order, able to schedule further events.

The queue stores plain ``(time, sequence, event)`` tuples rather than ordered
Event objects: tuple comparison happens entirely in C, which matters because
a 16-workcell campaign pushes and pops one entry per device action.
Cancellation is lazy -- :meth:`Event.cancel` only flags the event -- but the
scheduler counts cancelled entries and compacts the heap once they are the
majority, so a workload that schedules-then-cancels (timeouts, retries) cannot
inflate the queue without bound.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

from repro.sim.clock import Clock, SimClock

__all__ = ["Event", "EventScheduler"]

#: Lazy-deletion bound: compact once at least this many cancelled entries sit
#: in the heap *and* they outnumber live ones.  Small enough to bound memory,
#: large enough that sporadic cancels never trigger an O(n) rebuild.
_COMPACT_MIN_CANCELLED = 64


class Event:
    """A scheduled callback; ordered by time then insertion order."""

    __slots__ = ("time", "sequence", "callback", "label", "cancelled", "_scheduler")

    def __init__(
        self,
        time: float,
        sequence: int,
        callback: Callable[[], None],
        label: str = "",
        cancelled: bool = False,
    ):
        self.time = time
        self.sequence = sequence
        self.callback = callback
        self.label = label
        self.cancelled = cancelled
        self._scheduler: Optional["EventScheduler"] = None

    def cancel(self) -> None:
        """Mark this event so it is skipped when its time arrives."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._scheduler is not None:
            self._scheduler._note_cancelled()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.sequence) < (other.time, other.sequence)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return (self.time, self.sequence) == (other.time, other.sequence)

    def __hash__(self) -> int:
        return hash((self.time, self.sequence))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        flag = " cancelled" if self.cancelled else ""
        return f"Event(time={self.time!r}, sequence={self.sequence}, label={self.label!r}{flag})"


class EventScheduler:
    """Time-ordered execution of callbacks against a clock.

    Any clock exposing ``now()``/``advance_to()`` works: a :class:`SimClock`
    jumps straight to each event's timestamp, while a
    :class:`~repro.sim.clock.WallClock` sleeps until it, so the same
    event-driven engine drives simulation and hardware alike.
    """

    def __init__(self, clock: Optional[Clock] = None):
        self.clock = clock if clock is not None else SimClock()
        self._queue: List[Tuple[float, int, Event]] = []
        self._sequence = 0
        self._cancelled = 0
        self._processed = 0

    @property
    def pending(self) -> int:
        """Number of events still waiting to run (excluding cancelled ones)."""
        return len(self._queue) - self._cancelled

    @property
    def active(self) -> int:
        """Number of live (non-cancelled) events in the queue.

        Merge loops poll every shard's scheduler each iteration; checking
        ``active`` first lets a coordinator skip a shard whose queue holds
        nothing but cancelled husks without paying for a heap sweep.
        """
        return len(self._queue) - self._cancelled

    @property
    def queue_size(self) -> int:
        """Raw heap size, including lazily-deleted (cancelled) entries."""
        return len(self._queue)

    @property
    def processed(self) -> int:
        """Number of events that have been executed so far."""
        return self._processed

    def next_time(self) -> Optional[float]:
        """Timestamp of the next pending event, or ``None`` when idle.

        Lets a coordinator merge several schedulers by always stepping the
        one whose next event is earliest (multi-workcell sharding).
        """
        if self.active == 0:
            return None
        event = self._peek()
        return event.time if event is not None else None

    def schedule_at(self, timestamp: float, callback: Callable[[], None], label: str = "") -> Event:
        """Schedule ``callback`` at absolute simulated time ``timestamp``."""
        if timestamp < self.clock.now():
            raise ValueError(
                f"cannot schedule in the past (now={self.clock.now()}, requested={timestamp})"
            )
        return self._push(float(timestamp), callback, label)

    def schedule_after(self, delay_s: float, callback: Callable[[], None], label: str = "") -> Event:
        """Schedule ``callback`` ``delay_s`` seconds from the current time."""
        if delay_s < 0:
            raise ValueError(f"delay must be non-negative, got {delay_s}")
        # Fast path: a non-negative delay from "now" can never be in the past,
        # so skip the schedule_at validation (and its second clock read).
        return self._push(self.clock.now() + delay_s, callback, label)

    def _push(self, timestamp: float, callback: Callable[[], None], label: str) -> Event:
        sequence = self._sequence
        self._sequence = sequence + 1
        event = Event(timestamp, sequence, callback, label)
        event._scheduler = self
        heapq.heappush(self._queue, (timestamp, sequence, event))
        return event

    def _note_cancelled(self) -> None:
        """Account for one lazily-deleted event; compact when they dominate."""
        self._cancelled += 1
        if self._cancelled >= _COMPACT_MIN_CANCELLED and self._cancelled * 2 >= len(self._queue):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify the survivors (O(n))."""
        self._queue = [entry for entry in self._queue if not entry[2].cancelled]
        heapq.heapify(self._queue)
        self._cancelled = 0

    def step(self) -> Optional[Event]:
        """Run the next pending event (advancing the clock to it) and return it.

        Returns ``None`` when the queue is empty.  Cancelled events are
        silently discarded.
        """
        queue = self._queue
        while queue:
            event = heapq.heappop(queue)[2]
            if event.cancelled:
                self._cancelled -= 1
                continue
            self.clock.advance_to(event.time)
            event.callback()
            self._processed += 1
            return event
        return None

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run events until the queue empties, ``until`` is reached or ``max_events`` fire.

        Returns the number of events executed by this call.
        """
        executed = 0
        while self._queue:
            if max_events is not None and executed >= max_events:
                break
            next_event = self._peek()
            if next_event is None:
                break
            if until is not None and next_event.time > until:
                break
            if self.step() is not None:
                executed += 1
        if until is not None and self.clock.now() < until and not self._queue:
            # Idle out the remainder of the window.
            self.clock.advance_to(until)
        return executed

    def _peek(self) -> Optional[Event]:
        queue = self._queue
        while queue and queue[0][2].cancelled:
            heapq.heappop(queue)
            self._cancelled -= 1
        return queue[0][2] if queue else None
