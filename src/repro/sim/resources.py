"""Resource timelines for exclusive devices.

A physical workcell's devices can each do one thing at a time: the pf400 arm
cannot move two plates at once, an OT-2 deck holds a single plate.  When the
scheduler runs workflows concurrently (the multi-OT-2 ablation), it reserves
device time on a :class:`ResourceTimeline`, which serialises overlapping
requests by pushing later requests back to the earliest free slot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.utils.validation import check_non_negative

__all__ = ["ResourceTimeline", "ResourceBusyError"]


class ResourceBusyError(RuntimeError):
    """Raised when a non-blocking reservation is requested on a busy resource."""


@dataclass
class ResourceTimeline:
    """Tracks the busy intervals of a single exclusive resource.

    The timeline is append-only and monotonic: each reservation starts no
    earlier than both the requested time and the end of the previous
    reservation.
    """

    name: str
    intervals: List[Tuple[float, float]] = field(default_factory=list)

    @property
    def available_at(self) -> float:
        """Earliest time a new reservation could begin."""
        return self.intervals[-1][1] if self.intervals else 0.0

    @property
    def busy_time(self) -> float:
        """Total reserved time on this resource."""
        return sum(end - start for start, end in self.intervals)

    @property
    def reservations(self) -> int:
        """Number of reservations made so far."""
        return len(self.intervals)

    def reserve(self, requested_start: float, duration_s: float) -> Tuple[float, float]:
        """Reserve ``duration_s`` seconds at or after ``requested_start``.

        Returns the actual ``(start, end)`` granted; the start is delayed to
        the end of the previous reservation if the resource is still busy.
        """
        check_non_negative("requested_start", requested_start)
        check_non_negative("duration_s", duration_s)
        start = max(requested_start, self.available_at)
        end = start + duration_s
        self.intervals.append((start, end))
        return start, end

    def try_reserve(self, requested_start: float, duration_s: float) -> Tuple[float, float]:
        """Like :meth:`reserve` but raises :class:`ResourceBusyError` instead of waiting."""
        if requested_start < self.available_at:
            raise ResourceBusyError(
                f"resource {self.name!r} is busy until {self.available_at:.1f}s "
                f"(requested {requested_start:.1f}s)"
            )
        return self.reserve(requested_start, duration_s)

    def utilisation(self, horizon_s: float) -> float:
        """Fraction of ``[0, horizon_s]`` during which the resource was busy."""
        if horizon_s <= 0:
            raise ValueError(f"horizon_s must be > 0, got {horizon_s}")
        busy = sum(min(end, horizon_s) - min(start, horizon_s) for start, end in self.intervals)
        return busy / horizon_s

    def idle_gaps(self) -> List[Tuple[float, float]]:
        """Return the idle intervals between consecutive reservations."""
        gaps: List[Tuple[float, float]] = []
        previous_end = 0.0
        for start, end in self.intervals:
            if start > previous_end:
                gaps.append((previous_end, start))
            previous_end = end
        return gaps
