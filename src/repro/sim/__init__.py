"""Discrete-event simulation kernel.

The paper's experiments take hours of wall-clock time on a physical workcell
(the B = 1 run takes 8 h 12 m).  This package provides the simulated
substitute for real time: a :class:`SimClock` that the workflow engine
advances by the sampled duration of each device action, an event scheduler
for concurrent device activity (used by the multi-OT-2 ablation), calibrated
action-duration models, resource timelines for devices that can only do one
thing at a time, and a fault-injection model that makes the paper's
commands-completed-without-humans (CCWH) metric meaningful.
"""

from repro.sim.clock import Clock, SimClock, WallClock
from repro.sim.durations import DurationModel, DurationTable, paper_calibrated_durations
from repro.sim.events import Event, EventScheduler
from repro.sim.faults import FaultInjector, FaultPolicy, CommandFailure
from repro.sim.resources import ResourceBusyError, ResourceTimeline

__all__ = [
    "Clock",
    "SimClock",
    "WallClock",
    "Event",
    "EventScheduler",
    "DurationModel",
    "DurationTable",
    "paper_calibrated_durations",
    "FaultInjector",
    "FaultPolicy",
    "CommandFailure",
    "ResourceTimeline",
    "ResourceBusyError",
]
