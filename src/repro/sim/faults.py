"""Failure injection for simulated device commands.

The paper's commands-completed-without-humans (CCWH) metric exists because
real instruments fail: "most failures occur during reception and processing of
commands" (Section 4).  The simulated workcell therefore supports a
:class:`FaultPolicy` describing per-module command failure probabilities, and
a :class:`FaultInjector` that devices consult before executing each command.

By default no faults are injected (the paper's headline run completed 387
commands without error); the resiliency tests and the fault-injection example
turn failures on to exercise retry handling and the metric accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.utils.rng import ensure_rng
from repro.utils.validation import check_probability

__all__ = ["CommandFailure", "FaultPolicy", "FaultInjector"]


class CommandFailure(RuntimeError):
    """Raised by a simulated device when an injected fault fires.

    Attributes
    ----------
    module, action:
        Which command failed.
    recoverable:
        Whether a retry of the same command may succeed (transient
        communication errors) or the run needs human intervention
        (e.g. a dropped plate).
    """

    def __init__(self, module: str, action: str, recoverable: bool = True):
        super().__init__(f"injected failure in command {module}.{action}")
        self.module = module
        self.action = action
        self.recoverable = recoverable


@dataclass
class FaultPolicy:
    """Per-module failure probabilities.

    ``command_failure`` maps module names to the probability that any single
    command on that module fails; ``unrecoverable_fraction`` is the fraction
    of those failures that cannot be retried.
    """

    command_failure: Dict[str, float] = field(default_factory=dict)
    default_failure: float = 0.0
    unrecoverable_fraction: float = 0.1

    def __post_init__(self):
        for module, probability in self.command_failure.items():
            check_probability(f"command_failure[{module!r}]", probability)
        check_probability("default_failure", self.default_failure)
        check_probability("unrecoverable_fraction", self.unrecoverable_fraction)

    def probability_for(self, module: str) -> float:
        """Failure probability for commands on ``module``."""
        return self.command_failure.get(module, self.default_failure)

    @classmethod
    def none(cls) -> "FaultPolicy":
        """A policy that never injects failures (the default)."""
        return cls()

    @classmethod
    def uniform(cls, probability: float, unrecoverable_fraction: float = 0.1) -> "FaultPolicy":
        """A policy with the same failure probability for every module."""
        return cls(default_failure=probability, unrecoverable_fraction=unrecoverable_fraction)


class FaultInjector:
    """Stateful fault source consulted by devices before each command."""

    def __init__(self, policy: Optional[FaultPolicy] = None, rng=None):
        self.policy = policy if policy is not None else FaultPolicy.none()
        self._rng = ensure_rng(rng)
        self._history: List[Tuple[str, str, bool]] = []

    @property
    def injected_failures(self) -> int:
        """Total number of failures injected so far."""
        return len(self._history)

    @property
    def history(self) -> List[Tuple[str, str, bool]]:
        """List of ``(module, action, recoverable)`` for every injected failure."""
        return list(self._history)

    def check(self, module: str, action: str) -> None:
        """Raise :class:`CommandFailure` with the configured probability."""
        probability = self.policy.probability_for(module)
        if probability <= 0.0:
            return
        if self._rng.random() < probability:
            recoverable = self._rng.random() >= self.policy.unrecoverable_fraction
            self._history.append((module, action, recoverable))
            raise CommandFailure(module, action, recoverable=recoverable)
