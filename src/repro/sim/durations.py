"""Action-duration models calibrated to the paper's Table 1.

Every simulated device action samples its duration from a
:class:`DurationModel`; a :class:`DurationTable` maps ``(module, action)``
pairs to models.  The default table (:func:`paper_calibrated_durations`) is
calibrated so that a B = 1, N = 128 colour-picker run reproduces the shape of
Table 1:

* total time-without-humans ≈ 8 h 12 m,
* synthesis (OT-2 busy) time ≈ 5 h 10 m,
* transfer (everything else) ≈ 3 h,
* ≈ 4 minutes per colour.

See DESIGN.md Section 5 for the derivation of the individual numbers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.utils.rng import ensure_rng
from repro.utils.validation import check_non_negative

__all__ = [
    "DurationModel",
    "DurationTable",
    "ModuleSpeedProfile",
    "paper_calibrated_durations",
]


@dataclass(frozen=True)
class DurationModel:
    """Stochastic duration of one device action.

    The sampled duration is ``base + per_unit * units`` multiplied by a
    log-normal jitter factor with the given coefficient of variation, and
    never less than ``minimum``.

    ``units`` lets a single model cover batched actions: the OT-2's mixing
    protocol passes the number of wells it fills, the barty replenisher passes
    the number of reservoirs it refills, and so on.
    """

    base_s: float
    per_unit_s: float = 0.0
    jitter_cv: float = 0.05
    minimum_s: float = 0.5

    def __post_init__(self):
        check_non_negative("base_s", self.base_s)
        check_non_negative("per_unit_s", self.per_unit_s)
        check_non_negative("jitter_cv", self.jitter_cv)
        check_non_negative("minimum_s", self.minimum_s)

    def mean(self, units: float = 1.0) -> float:
        """Expected duration for ``units`` units of work (ignoring the floor)."""
        return self.base_s + self.per_unit_s * float(units)

    def sample(self, rng=None, units: float = 1.0) -> float:
        """Draw one duration in seconds."""
        rng = ensure_rng(rng)
        mean = self.mean(units)
        if self.jitter_cv <= 0.0 or mean <= 0.0:
            return max(mean, self.minimum_s)
        # Log-normal multiplicative jitter with unit mean.
        sigma = np.sqrt(np.log(1.0 + self.jitter_cv**2))
        factor = rng.lognormal(mean=-0.5 * sigma**2, sigma=sigma)
        return max(mean * factor, self.minimum_s)


class DurationTable:
    """Lookup of duration models by ``(module, action)``.

    Unknown actions fall back to a per-module default, then to a global
    default, so adding a new device action never breaks timing.
    """

    def __init__(
        self,
        entries: Optional[Dict[Tuple[str, str], DurationModel]] = None,
        module_defaults: Optional[Dict[str, DurationModel]] = None,
        default: Optional[DurationModel] = None,
    ):
        self._entries: Dict[Tuple[str, str], DurationModel] = dict(entries or {})
        self._module_defaults: Dict[str, DurationModel] = dict(module_defaults or {})
        self._default = default if default is not None else DurationModel(base_s=5.0)

    def set(self, module: str, action: str, model: DurationModel) -> None:
        """Register (or replace) the model for ``module.action``."""
        self._entries[(module, action)] = model

    def set_module_default(self, module: str, model: DurationModel) -> None:
        """Register the fallback model for any action on ``module``."""
        self._module_defaults[module] = model

    def get(self, module: str, action: str) -> DurationModel:
        """Return the most specific model available for ``module.action``."""
        key = (module, action)
        if key in self._entries:
            return self._entries[key]
        if module in self._module_defaults:
            return self._module_defaults[module]
        return self._default

    def sample(self, module: str, action: str, rng=None, units: float = 1.0) -> float:
        """Sample a duration for one execution of ``module.action``."""
        return self.get(module, action).sample(rng=rng, units=units)

    def mean(self, module: str, action: str, units: float = 1.0) -> float:
        """Expected duration for ``module.action`` (used by planning/tests)."""
        return self.get(module, action).mean(units=units)

    def items(self):
        """Iterate over explicitly registered ``((module, action), model)`` pairs."""
        return self._entries.items()

    def copy(self) -> "DurationTable":
        """Return an independent copy (so experiments can scale durations)."""
        return DurationTable(dict(self._entries), dict(self._module_defaults), self._default)

    def modules(self) -> Tuple[str, ...]:
        """Every module name with an explicit entry or module default."""
        names = {module for module, _action in self._entries}
        names.update(self._module_defaults)
        return tuple(sorted(names))

    def scaled(self, factor: Union[float, Mapping[str, float]]) -> "DurationTable":
        """Return a copy with durations scaled by ``factor``.

        ``factor`` is either a single number applied to every model ("what if
        the robots were twice as fast" ablations) or a mapping of *module
        name* to per-module duration factor, leaving unmapped modules
        untouched.  A mapped module with no registered module default gets
        one synthesised from the scaled global default, so its fallback
        actions slow down (or speed up) with the rest of the module.
        """

        def check(name: str, value: float) -> float:
            value = float(value)
            if not math.isfinite(value) or value <= 0:
                raise ValueError(f"{name} must be a finite value > 0, got {value}")
            return value

        def scale(model: DurationModel, by: float) -> DurationModel:
            return DurationModel(
                base_s=model.base_s * by,
                per_unit_s=model.per_unit_s * by,
                jitter_cv=model.jitter_cv,
                minimum_s=model.minimum_s * by,
            )

        if not isinstance(factor, Mapping):
            by = check("factor", factor)
            return DurationTable(
                {key: scale(model, by) for key, model in self._entries.items()},
                {module: scale(model, by) for module, model in self._module_defaults.items()},
                scale(self._default, by),
            )

        factors = {module: check(f"factor[{module!r}]", value) for module, value in factor.items()}
        entries = {
            (module, action): scale(model, factors.get(module, 1.0))
            for (module, action), model in self._entries.items()
        }
        module_defaults = {
            module: scale(model, factors.get(module, 1.0))
            for module, model in self._module_defaults.items()
        }
        for module, by in factors.items():
            if module not in module_defaults:
                module_defaults[module] = scale(self._default, by)
        return DurationTable(entries, module_defaults, self._default)


@dataclass(frozen=True)
class ModuleSpeedProfile:
    """Per-module *speed* factors describing one workcell's hardware mix.

    A speed of ``2.5`` for ``"ot2"`` means that workcell's OT-2 runs 2.5x
    faster than the calibrated baseline, i.e. its action durations are
    divided by 2.5 (:meth:`apply` scales the duration table by the
    reciprocal).  Modules not named run at baseline speed.  An empty profile
    (:meth:`is_identity`) leaves the table untouched.
    """

    speeds: Mapping[str, float]

    def __post_init__(self):
        cleaned: Dict[str, float] = {}
        for module, speed in dict(self.speeds).items():
            name = str(module).strip()
            if not name:
                raise ValueError("module name must be non-empty")
            value = float(speed)
            if not math.isfinite(value) or value <= 0:
                raise ValueError(
                    f"speed factor for module {name!r} must be a finite value > 0, got {value}"
                )
            cleaned[name] = value
        object.__setattr__(self, "speeds", cleaned)

    @property
    def is_identity(self) -> bool:
        """True when the profile changes no module (all speeds 1.0 or empty)."""
        return all(speed == 1.0 for speed in self.speeds.values())

    @classmethod
    def parse(cls, spec: str) -> "ModuleSpeedProfile":
        """Parse ``"ot2=2.5,pf400=0.5"`` into a profile.

        Raises :class:`ValueError` on malformed pairs or non-positive /
        non-finite factors; an empty string yields the identity profile.
        """
        speeds: Dict[str, float] = {}
        for pair in str(spec).split(","):
            pair = pair.strip()
            if not pair:
                continue
            module, sep, value = pair.partition("=")
            if not sep or not module.strip() or not value.strip():
                raise ValueError(
                    f"expected 'module=factor' pairs separated by commas, got {pair!r}"
                )
            try:
                speeds[module.strip()] = float(value)
            except ValueError:
                raise ValueError(f"speed factor {value!r} for module {module.strip()!r} is not a number")
        return cls(speeds)

    @classmethod
    def coerce(cls, value: "ModuleSpeedProfile | Mapping[str, float] | str | None") -> "ModuleSpeedProfile":
        """Normalise a profile, mapping, spec string, or ``None`` to a profile."""
        if value is None:
            return cls({})
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            return cls.parse(value)
        if isinstance(value, Mapping):
            return cls(value)
        raise TypeError(
            f"module speeds must be a ModuleSpeedProfile, mapping, or 'module=factor' "
            f"string, got {type(value).__name__}"
        )

    @classmethod
    def broadcast(
        cls,
        spec: "ModuleSpeedProfile | Mapping[str, float] | str | Sequence | None",
        n: int,
    ) -> Tuple["ModuleSpeedProfile", ...]:
        """Expand one profile (applied to every shard) or a per-shard sequence.

        ``spec`` may be ``None`` / a single profile-like value (broadcast to
        all ``n`` shards) or a sequence of exactly ``n`` profile-like values.
        """
        if n <= 0:
            raise ValueError(f"n must be > 0, got {n}")
        if isinstance(spec, (list, tuple)):
            if len(spec) != n:
                raise ValueError(
                    f"expected {n} per-shard module-speed profiles, got {len(spec)}"
                )
            return tuple(cls.coerce(item) for item in spec)
        return (cls.coerce(spec),) * n

    def apply(self, table: DurationTable) -> DurationTable:
        """Return ``table`` rescaled so each named module runs at its speed."""
        if self.is_identity:
            return table
        return table.scaled({module: 1.0 / speed for module, speed in self.speeds.items()})

    def to_dict(self) -> Dict[str, float]:
        """Plain-dict form (for status payloads and logs)."""
        return dict(self.speeds)


def paper_calibrated_durations(jitter_cv: float = 0.05) -> DurationTable:
    """The default duration table, calibrated to the paper's Table 1.

    Calibration (see DESIGN.md Section 5): with B = 1 the OT-2 takes about
    145 s per single-well protocol (synthesis ≈ 5 h 10 m over 128 wells) and
    each pf400 plate move takes ≈ 42 s; together with camera imaging, plate
    fetching and reservoir refills this lands the full 128-sample run at about
    8 h 10 m and ≈ 4 minutes per colour.
    """
    table = DurationTable(default=DurationModel(base_s=5.0, jitter_cv=jitter_cv))

    # Plate crane: fetching a fresh plate from a storage tower.
    table.set("sciclops", "get_plate", DurationModel(base_s=55.0, jitter_cv=jitter_cv))
    table.set("sciclops", "status", DurationModel(base_s=1.0, jitter_cv=jitter_cv))

    # Manipulator arm: one plate move between two known locations.
    table.set("pf400", "transfer", DurationModel(base_s=40.0, jitter_cv=jitter_cv))
    table.set("pf400", "move_home", DurationModel(base_s=15.0, jitter_cv=jitter_cv))

    # Liquid handler: protocol setup plus per-well dispense/mix time.
    table.set(
        "ot2",
        "run_protocol",
        DurationModel(base_s=58.0, per_unit_s=86.0, jitter_cv=jitter_cv),
    )
    table.set("ot2", "replace_tips", DurationModel(base_s=30.0, jitter_cv=jitter_cv))

    # Liquid replenisher: per-reservoir pump time.
    table.set("barty", "fill_colors", DurationModel(base_s=20.0, per_unit_s=25.0, jitter_cv=jitter_cv))
    table.set("barty", "drain_colors", DurationModel(base_s=15.0, per_unit_s=15.0, jitter_cv=jitter_cv))
    table.set("barty", "refill_colors", DurationModel(base_s=20.0, per_unit_s=25.0, jitter_cv=jitter_cv))

    # Camera: imaging is quick.
    table.set("camera", "take_picture", DurationModel(base_s=3.5, jitter_cv=jitter_cv))

    # Computational / data steps (not robotic commands).
    table.set("compute", "solver", DurationModel(base_s=1.5, jitter_cv=jitter_cv))
    table.set("compute", "image_processing", DurationModel(base_s=2.0, jitter_cv=jitter_cv))
    table.set("publish", "upload", DurationModel(base_s=4.5, jitter_cv=jitter_cv))

    # Human intervention after an unrecoverable command failure (clearing the
    # error, re-homing the arm, removing a dropped plate).  Only used when the
    # application is configured to recover instead of aborting.
    table.set("human", "intervention", DurationModel(base_s=420.0, jitter_cv=max(jitter_cv, 0.2)))

    return table
