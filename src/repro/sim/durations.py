"""Action-duration models calibrated to the paper's Table 1.

Every simulated device action samples its duration from a
:class:`DurationModel`; a :class:`DurationTable` maps ``(module, action)``
pairs to models.  The default table (:func:`paper_calibrated_durations`) is
calibrated so that a B = 1, N = 128 colour-picker run reproduces the shape of
Table 1:

* total time-without-humans ≈ 8 h 12 m,
* synthesis (OT-2 busy) time ≈ 5 h 10 m,
* transfer (everything else) ≈ 3 h,
* ≈ 4 minutes per colour.

See DESIGN.md Section 5 for the derivation of the individual numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.utils.rng import ensure_rng
from repro.utils.validation import check_non_negative

__all__ = ["DurationModel", "DurationTable", "paper_calibrated_durations"]


@dataclass(frozen=True)
class DurationModel:
    """Stochastic duration of one device action.

    The sampled duration is ``base + per_unit * units`` multiplied by a
    log-normal jitter factor with the given coefficient of variation, and
    never less than ``minimum``.

    ``units`` lets a single model cover batched actions: the OT-2's mixing
    protocol passes the number of wells it fills, the barty replenisher passes
    the number of reservoirs it refills, and so on.
    """

    base_s: float
    per_unit_s: float = 0.0
    jitter_cv: float = 0.05
    minimum_s: float = 0.5

    def __post_init__(self):
        check_non_negative("base_s", self.base_s)
        check_non_negative("per_unit_s", self.per_unit_s)
        check_non_negative("jitter_cv", self.jitter_cv)
        check_non_negative("minimum_s", self.minimum_s)

    def mean(self, units: float = 1.0) -> float:
        """Expected duration for ``units`` units of work (ignoring the floor)."""
        return self.base_s + self.per_unit_s * float(units)

    def sample(self, rng=None, units: float = 1.0) -> float:
        """Draw one duration in seconds."""
        rng = ensure_rng(rng)
        mean = self.mean(units)
        if self.jitter_cv <= 0.0 or mean <= 0.0:
            return max(mean, self.minimum_s)
        # Log-normal multiplicative jitter with unit mean.
        sigma = np.sqrt(np.log(1.0 + self.jitter_cv**2))
        factor = rng.lognormal(mean=-0.5 * sigma**2, sigma=sigma)
        return max(mean * factor, self.minimum_s)


class DurationTable:
    """Lookup of duration models by ``(module, action)``.

    Unknown actions fall back to a per-module default, then to a global
    default, so adding a new device action never breaks timing.
    """

    def __init__(
        self,
        entries: Optional[Dict[Tuple[str, str], DurationModel]] = None,
        module_defaults: Optional[Dict[str, DurationModel]] = None,
        default: Optional[DurationModel] = None,
    ):
        self._entries: Dict[Tuple[str, str], DurationModel] = dict(entries or {})
        self._module_defaults: Dict[str, DurationModel] = dict(module_defaults or {})
        self._default = default if default is not None else DurationModel(base_s=5.0)

    def set(self, module: str, action: str, model: DurationModel) -> None:
        """Register (or replace) the model for ``module.action``."""
        self._entries[(module, action)] = model

    def set_module_default(self, module: str, model: DurationModel) -> None:
        """Register the fallback model for any action on ``module``."""
        self._module_defaults[module] = model

    def get(self, module: str, action: str) -> DurationModel:
        """Return the most specific model available for ``module.action``."""
        key = (module, action)
        if key in self._entries:
            return self._entries[key]
        if module in self._module_defaults:
            return self._module_defaults[module]
        return self._default

    def sample(self, module: str, action: str, rng=None, units: float = 1.0) -> float:
        """Sample a duration for one execution of ``module.action``."""
        return self.get(module, action).sample(rng=rng, units=units)

    def mean(self, module: str, action: str, units: float = 1.0) -> float:
        """Expected duration for ``module.action`` (used by planning/tests)."""
        return self.get(module, action).mean(units=units)

    def items(self):
        """Iterate over explicitly registered ``((module, action), model)`` pairs."""
        return self._entries.items()

    def copy(self) -> "DurationTable":
        """Return an independent copy (so experiments can scale durations)."""
        return DurationTable(dict(self._entries), dict(self._module_defaults), self._default)

    def scaled(self, factor: float) -> "DurationTable":
        """Return a copy with every duration scaled by ``factor``.

        Useful for "what if the robots were twice as fast" ablations.
        """
        if factor <= 0:
            raise ValueError(f"factor must be > 0, got {factor}")

        def scale(model: DurationModel) -> DurationModel:
            return DurationModel(
                base_s=model.base_s * factor,
                per_unit_s=model.per_unit_s * factor,
                jitter_cv=model.jitter_cv,
                minimum_s=model.minimum_s * factor,
            )

        return DurationTable(
            {key: scale(model) for key, model in self._entries.items()},
            {module: scale(model) for module, model in self._module_defaults.items()},
            scale(self._default),
        )


def paper_calibrated_durations(jitter_cv: float = 0.05) -> DurationTable:
    """The default duration table, calibrated to the paper's Table 1.

    Calibration (see DESIGN.md Section 5): with B = 1 the OT-2 takes about
    145 s per single-well protocol (synthesis ≈ 5 h 10 m over 128 wells) and
    each pf400 plate move takes ≈ 42 s; together with camera imaging, plate
    fetching and reservoir refills this lands the full 128-sample run at about
    8 h 10 m and ≈ 4 minutes per colour.
    """
    table = DurationTable(default=DurationModel(base_s=5.0, jitter_cv=jitter_cv))

    # Plate crane: fetching a fresh plate from a storage tower.
    table.set("sciclops", "get_plate", DurationModel(base_s=55.0, jitter_cv=jitter_cv))
    table.set("sciclops", "status", DurationModel(base_s=1.0, jitter_cv=jitter_cv))

    # Manipulator arm: one plate move between two known locations.
    table.set("pf400", "transfer", DurationModel(base_s=40.0, jitter_cv=jitter_cv))
    table.set("pf400", "move_home", DurationModel(base_s=15.0, jitter_cv=jitter_cv))

    # Liquid handler: protocol setup plus per-well dispense/mix time.
    table.set(
        "ot2",
        "run_protocol",
        DurationModel(base_s=58.0, per_unit_s=86.0, jitter_cv=jitter_cv),
    )
    table.set("ot2", "replace_tips", DurationModel(base_s=30.0, jitter_cv=jitter_cv))

    # Liquid replenisher: per-reservoir pump time.
    table.set("barty", "fill_colors", DurationModel(base_s=20.0, per_unit_s=25.0, jitter_cv=jitter_cv))
    table.set("barty", "drain_colors", DurationModel(base_s=15.0, per_unit_s=15.0, jitter_cv=jitter_cv))
    table.set("barty", "refill_colors", DurationModel(base_s=20.0, per_unit_s=25.0, jitter_cv=jitter_cv))

    # Camera: imaging is quick.
    table.set("camera", "take_picture", DurationModel(base_s=3.5, jitter_cv=jitter_cv))

    # Computational / data steps (not robotic commands).
    table.set("compute", "solver", DurationModel(base_s=1.5, jitter_cv=jitter_cv))
    table.set("compute", "image_processing", DurationModel(base_s=2.0, jitter_cv=jitter_cv))
    table.set("publish", "upload", DurationModel(base_s=4.5, jitter_cv=jitter_cv))

    # Human intervention after an unrecoverable command failure (clearing the
    # error, re-homing the arm, removing a dropped plate).  Only used when the
    # application is configured to recover instead of aborting.
    table.set("human", "intervention", DurationModel(base_s=420.0, jitter_cv=max(jitter_cv, 0.2)))

    return table
